"""System configuration: every Table IV parameter, plus model switches.

The paper's "Task Machine" is fully configurable (number of cores, clock
frequencies, on-/off-chip access times, table geometries, FIFO sizes...);
:class:`SystemConfig` is the equivalent single source of truth here.  All
times are integer picoseconds, all sizes are entry counts (the byte sizes
quoted in Table IV are derived properties so the README can echo the same
table the paper prints).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from ..sim.time_units import NS

__all__ = ["SystemConfig", "BUS_MODEL_FORMULA", "BUS_MODEL_FITTED"]

#: Submission cost model exactly as §IV prose: 5-cycle handshake plus
#: 2 cycles per 8-byte word, one word for (ID, function pointer) plus one
#: word per parameter.
BUS_MODEL_FORMULA = "formula"
#: Submission cost fitted to the paper's worked examples (10 cycles for a
#: 4-parameter task, 14 cycles for 8 parameters): ``6 + nP`` cycles.  The
#: prose formula gives 15/23 cycles for the same examples; the paper is
#: internally inconsistent, so both models are provided.
BUS_MODEL_FITTED = "fitted"


@dataclass(frozen=True)
class SystemConfig:
    """Complete parameter set for a Nexus++ machine simulation.

    Defaults reproduce Table IV of the paper.
    """

    # ---- machine shape ---------------------------------------------------------
    #: Number of worker cores (the master core is extra, as in Fig. 1).
    workers: int = 16
    #: Per-worker Task Controller buffering depth; 2 = double buffering.
    #: Table IV sizes the CxRdyTasks/CxFinTasks lists at 4 bytes = two 2-byte
    #: task IDs, i.e. depth 2.
    buffering_depth: int = 2

    # ---- clocks ----------------------------------------------------------------
    #: Worker/master core clock (2 GHz in Table IV).
    core_clock_hz: int = 2_000_000_000
    #: Nexus++ clock (500 MHz in Table IV; cycle time 2 ns).
    nexus_clock_hz: int = 500_000_000

    # ---- on-chip storage -------------------------------------------------------
    #: On-chip table access time (CACTI figure for the ~100 KB structures).
    on_chip_access_time: int = 2 * NS
    #: Task Pool capacity in Task Descriptors (1K in Table IV).
    task_pool_entries: int = 1024
    #: Parameters (inputs/outputs) a single Task Descriptor can hold.
    max_params_per_td: int = 8
    #: Task Descriptor size in bytes (for the derived 78 KB figure only).
    td_bytes: int = 78
    #: Dependence Table entries (4K in Table IV).
    dependence_table_entries: int = 4096
    #: Dependence Table entry size in bytes (28 B; derived 112 KB total).
    dt_entry_bytes: int = 28
    #: Kick-Off List slots per Dependence Table entry.
    kickoff_list_size: int = 8

    # ---- FIFO lists (entry counts; Table IV gives the byte sizes) ---------------
    #: TDs Sizes list: 1 KB of 1-byte sizes -> 1024 entries.  Governs how many
    #: submitted-but-unstored TDs may queue before the master stalls.
    tds_sizes_list_entries: int = 1024
    #: New Tasks list: 2 KB of 2-byte task IDs.
    new_tasks_list_entries: int = 1024
    #: TP Free Indices list: one slot per Task Pool entry.
    tp_free_list_entries: int = 1024
    #: Global Ready Tasks list: 2 KB of 2-byte task IDs.
    global_ready_list_entries: int = 1024
    #: Worker Cores IDs list: 2 KB of 2-byte core IDs.
    worker_ids_list_entries: int = 1024

    # ---- sharded Maestro --------------------------------------------------------
    #: Number of Task Maestro shards.  1 reproduces the paper's single
    #: Maestro; N > 1 hash-partitions the Dependence Table across N Maestro
    #: instances joined by a ring interconnect (scatter/gather protocol).
    maestro_shards: int = 1
    #: Inter-Maestro interconnect latency per ring hop (picoseconds).
    shard_hop_time: int = 4 * NS
    #: Dependence Table entries owned by each shard.  ``None`` splits
    #: ``dependence_table_entries`` evenly (ceiling) across the shards so the
    #: total capacity stays comparable to the single-Maestro machine.
    dependence_table_entries_per_shard: Optional[int] = None
    #: Depth of each shard's check/finish message queues (scatter requests
    #: queue here; a full inbox backpressures the sender).
    shard_inbox_entries: int = 16
    #: Run the sharded Maestro implementation even when ``maestro_shards``
    #: is 1 (differential-testing switch; the production machine uses the
    #: dedicated single-Maestro engine at 1 shard).
    force_sharded_maestro: bool = False
    #: Finishes each shard's retire front-end may keep in flight at once.
    #: 1 reproduces the serialized retire loop (param read, finish scatter,
    #: reply gather and chain free complete for one task before the next
    #: starts — cycle-for-cycle the pre-pipelining machine); N > 1 tags the
    #: finish scatter/gather with retire tickets so successive finishes
    #: overlap, bounded by the N ticket slots (backpressure when exhausted).
    #: A sharded-engine knob: raising it on a single-Maestro machine is an
    #: error rather than a silent no-op.
    retire_pipeline_depth: int = 1
    #: Concurrent Task Pool access ports (a banked/multi-ported SRAM; the
    #: paper's per-entry busy bits allow concurrent access to distinct
    #: entries, which a single arbitration port under-models).  ``None``
    #: provisions one port per *per-shard ticket slot* — i.e.
    #: ``retire_pipeline_depth`` ports, shared by all shards and blocks —
    #: so the depth-1 machine keeps the paper-exact single port and a
    #: deeper retire pipeline scales its TP bandwidth with its depth.
    task_pool_ports: Optional[int] = None

    # ---- fast-dispatch subsystem -------------------------------------------------
    #: Per-shard TD prefetch cache capacity, in staged Task Descriptors.
    #: 0 disables the cache (the paper machine).  N > 0 lets each shard's
    #: prefetch engine pull a *near-ready* waiter's TD chain out of the
    #: Task Pool ahead of the final finish->kick resolution, so the TD
    #: read+stream latency overlaps resolution instead of following it.
    #: Prefetch reads arbitrate for the same Task Pool ports as every
    #: other block, so Task Pool bandwidth stays faithful.  A
    #: sharded-engine knob, like ``retire_pipeline_depth``.
    td_cache_entries: int = 0
    #: Dependence-Counter threshold at which a waiter counts as
    #: *near-ready* and its TD chain is prefetched: the default 1 fires
    #: when one unresolved dependence remains (the classic chain hop);
    #: larger values speculate earlier, wasting cache slots on waiters
    #: that may stay blocked for a long time.
    td_prefetch_depth: int = 1
    #: Kick-off fast path: let the shard that resolves a waiter's final
    #: dependence dispatch the now-ready task directly to one of its own
    #: idle worker cores, skipping the forward hop to the task's home
    #: shard and the home scheduler's queue round trip.  A non-blocking
    #: ownership notice to the home shard keeps retirement bookkeeping
    #: unchanged.  Also a sharded-engine knob.
    kickoff_fast_path: bool = False
    # ---- staged resolve pipeline ---------------------------------------------------
    #: Finish notifications/messages a resolve stage drains per activation
    #: (finish-notification coalescing).  1 reproduces the paper's
    #: one-notification-at-a-time loop exactly; N > 1 lets the notify
    #: intake pull up to N already-arrived notifications in one batch and
    #: lets the dependence-table update stage merge updates that hit the
    #: same Dependence Table row into a single row access (the hash probe
    #: is paid once per row per batch).  Per-address finish order is
    #: preserved: batches drain in arrival order and same-row updates
    #: apply in that order within the merged access (ARCHITECTURE.md
    #: invariant 5).  Works on both Maestro engines.
    finish_coalesce_limit: int = 1
    #: Picoseconds the notify intake waits after the first notification of
    #: a batch for stragglers to land before draining (0 = drain only
    #: what already arrived).  Trades a bounded added latency on the
    #: first notification for larger batches; meaningful only with
    #: ``finish_coalesce_limit`` > 1 (setting it alone is an error rather
    #: than a silent no-op).
    finish_coalesce_window: int = 0
    #: Speculative kick-off: hand became-ready waiter kicks to a dedicated
    #: per-shard kick unit instead of running them inline in the resolve
    #: loop, so the kick of one notification's waiter overlaps the
    #: dependence-table update commit of the *next* notification.  The
    #: kick unit arbitrates for the same Task Pool ports as every other
    #: block (no conjured bandwidth) and preserves kick order per shard
    #: (a FIFO hand-off).  Composes with the fast-dispatch subsystem: the
    #: kick-off fast path and prefetch notices fire from the kick unit.
    #: Works on both Maestro engines.
    speculative_kickoff: bool = False

    # ---- decentralized check scatter --------------------------------------------
    #: Decentralize the Check Scatter: replace the single program-ordered
    #: scatter sequencer with one scatter slice per master core (each
    #: master's descriptors are scattered from its own slice engine), with
    #: a sequence-numbered re-sequencer per destination shard restoring
    #: program order per destination — the same mechanism the submission
    #: MergeUnit uses, applied per shard.  Per-address check order is
    #: unchanged (ARCHITECTURE.md invariant 6).  False keeps the central
    #: sequencer and builds none of the slice machinery.  A sharded-engine
    #: knob: the single-Maestro machine has no scatter to decentralize.
    decentralized_check_scatter: bool = False
    #: Check probes a check engine drains from its inbox per activation
    #: (check-side coalescing, the mirror image of
    #: ``finish_coalesce_limit``).  1 reproduces the one-probe-at-a-time
    #: loop exactly; N > 1 lets the engine pull up to N already-arrived
    #: check messages in one batch, merge probes that hit the same
    #: Dependence Table row into a single row access and pipeline the
    #: probe/insert stages across the batch.  Per-address check order is
    #: preserved: batches drain in arrival order and same-row probes apply
    #: in that order within the merged access.  A sharded-engine knob.
    check_coalesce_limit: int = 1
    #: Picoseconds a check engine waits after the first probe of a batch
    #: for stragglers before draining (0 = drain only what already
    #: arrived).  Meaningful only with ``check_coalesce_limit`` > 1
    #: (setting it alone is an error rather than a silent no-op).
    check_coalesce_window: int = 0

    #: Locality-aware work stealing: an idle shard prefers stealing from
    #: shards that have no idle worker of their own, leaving a ready task
    #: whose home pool already holds an idle core for that core (its home
    #: scheduler is one FIFO pop away from dispatching it) — avoiding the
    #: steal-after-forward ping-pong where a task is stolen one cycle
    #: after the finish engine paid the forward hop to send it home.
    #: ``None`` derives the policy from the fast-dispatch subsystem (on
    #: when any of its features is on), keeping the subsystem-off machine
    #: cycle-for-cycle the old one.
    locality_stealing: Optional[bool] = None

    # ---- master core / on-chip bus ----------------------------------------------
    #: Number of master cores generating Task Descriptors.  1 reproduces the
    #: paper's single serial master; N > 1 splits the trace round-robin over
    #: N submitters whose streams a sequence-numbered merge unit reassembles
    #: into global program order before Write TP (beyond the paper).
    master_cores: int = 1
    #: Task Descriptors per bus transaction (DMA-style batching).  1
    #: reproduces the paper's one-handshake-per-descriptor submission; B > 1
    #: amortizes the handshake over B descriptors.
    submission_batch: int = 1
    #: Task Descriptor preparation time on the master core (30 ns, §IV).
    task_prep_time: int = 30 * NS
    #: Handshaking delay before each submission, in Nexus cycles.
    bus_handshake_cycles: int = 5
    #: Bus transfer cost per 8-byte word, in Nexus cycles (2 GB/s bus).
    bus_word_cycles: int = 2
    #: Which submission-cost model to use (see module constants).
    bus_model: str = BUS_MODEL_FORMULA

    # ---- off-chip memory ----------------------------------------------------------
    #: Off-chip access time per chunk (12 ns per 128 B, CACTI).
    off_chip_access_time: int = 12 * NS
    #: Chunk size the off-chip access time refers to.
    memory_chunk_bytes: int = 128
    #: Number of single-ported memory banks; at most this many concurrent
    #: accessors ("no more than 32 tasks can access the memory at a given time").
    memory_banks: int = 32
    #: Whether to model memory contention at all (False = contention-free runs).
    memory_contention: bool = True
    #: Chunks transferred per bank acquisition.  1 reproduces pure per-chunk
    #: interleaving; larger batches trade arbitration granularity for
    #: simulation speed (batch duration stays far below task durations).
    memory_batch_chunks: int = 64

    # ---- simulation kernel -------------------------------------------------------
    #: Event-scheduler implementation: ``"wheel"`` (default) is the
    #: timing-wheel/calendar-queue kernel built for 100k+-task traces;
    #: ``"heap"`` is the original global-heap kernel, kept runnable for
    #: cycle-identity differential tests.  Both are bit-for-bit
    #: deterministic and produce identical schedules — the knob only
    #: trades wall-clock speed.  A host-side switch: it never changes
    #: modelled results.
    sim_kernel: str = "wheel"

    #: Same-cycle fast-path execution (host-side, default on): zero-latency
    #: wake-ups (a ``put`` meeting a waiting getter, a set signal, a free
    #: resource unit) run inline from the wheel kernel's ready ring instead
    #: of paying a schedule/drain round trip, and the hottest hardware
    #: blocks (Task Controller loops, *Send TDs*) are built as
    #: allocation-free callback state machines instead of generator
    #: coroutines.  Cycle-identical to ``fast_path=False`` and to the heap
    #: kernel (differential-tested): like ``sim_kernel``, the knob only
    #: trades wall-clock speed, never modelled results.
    fast_path: bool = True

    # ---- telemetry ----------------------------------------------------------------
    #: Telemetry sampling window in picoseconds; 0 (default) disables the
    #: windowed :class:`~repro.analysis.telemetry.TelemetrySampler` and
    #: builds none of its machinery.  N > 0 snapshots every registered
    #: signal (per-block busy fractions, queue depths, retire tickets in
    #: flight, TD-cache hit rate...) once per window into a time series
    #: carried in ``stats["telemetry"]``.  Sampling is observe-only: the
    #: host loop steps ``sim.run(until=...)`` to each window boundary and
    #: reads the statistics there, injecting zero simulation events, so a
    #: sampled run replays cycle-identically to an unsampled one.
    telemetry_window: int = 0

    # ---- model switches -------------------------------------------------------------
    #: Nexus (non-plus-plus) compatibility mode: refuse tasks with more than
    #: ``max_params_per_td`` parameters and more than ``kickoff_list_size``
    #: waiters per address instead of spilling to dummy tasks/entries.
    restricted: bool = False
    #: Worker peak FLOP rate, used by workloads specified in FLOPs (Gaussian
    #: elimination: 2 GFLOPS per core, §V).
    core_gflops: float = 2.0
    #: Free-form provenance notes carried into result reports.
    notes: dict[str, Any] = field(default_factory=dict)

    # ---- validation ------------------------------------------------------------------

    def __post_init__(self) -> None:
        positive = [
            ("workers", self.workers),
            ("buffering_depth", self.buffering_depth),
            ("core_clock_hz", self.core_clock_hz),
            ("nexus_clock_hz", self.nexus_clock_hz),
            ("on_chip_access_time", self.on_chip_access_time),
            ("task_pool_entries", self.task_pool_entries),
            ("max_params_per_td", self.max_params_per_td),
            ("dependence_table_entries", self.dependence_table_entries),
            ("kickoff_list_size", self.kickoff_list_size),
            ("tds_sizes_list_entries", self.tds_sizes_list_entries),
            ("new_tasks_list_entries", self.new_tasks_list_entries),
            ("tp_free_list_entries", self.tp_free_list_entries),
            ("global_ready_list_entries", self.global_ready_list_entries),
            ("worker_ids_list_entries", self.worker_ids_list_entries),
            ("off_chip_access_time", self.off_chip_access_time),
            ("memory_chunk_bytes", self.memory_chunk_bytes),
            ("memory_banks", self.memory_banks),
            ("memory_batch_chunks", self.memory_batch_chunks),
            ("maestro_shards", self.maestro_shards),
            ("shard_inbox_entries", self.shard_inbox_entries),
            ("retire_pipeline_depth", self.retire_pipeline_depth),
            # (retire_pipeline_depth > 1 additionally requires the sharded
            # engine; checked below once use_sharded_maestro is decidable.)
            ("master_cores", self.master_cores),
            ("submission_batch", self.submission_batch),
        ]
        for name, value in positive:
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.master_cores < 1:
            raise ValueError(f"master_cores must be >= 1, got {self.master_cores}")
        if self.submission_batch < 1:
            raise ValueError(
                f"submission_batch must be >= 1, got {self.submission_batch}"
            )
        if self.task_prep_time < 0:
            raise ValueError("task_prep_time must be >= 0")
        if self.bus_handshake_cycles < 0 or self.bus_word_cycles < 0:
            raise ValueError("bus cycle counts must be >= 0")
        if self.bus_model not in (BUS_MODEL_FORMULA, BUS_MODEL_FITTED):
            raise ValueError(f"unknown bus_model {self.bus_model!r}")
        if self.max_params_per_td < 2:
            # A dummy chain needs at least one payload slot plus the pointer.
            raise ValueError("max_params_per_td must be >= 2")
        if self.kickoff_list_size < 2:
            raise ValueError("kickoff_list_size must be >= 2")
        if self.tp_free_list_entries < self.task_pool_entries:
            raise ValueError(
                "TP Free Indices list must hold every Task Pool index "
                f"({self.tp_free_list_entries} < {self.task_pool_entries})"
            )
        if self.core_gflops <= 0:
            raise ValueError("core_gflops must be positive")
        if self.shard_hop_time < 0:
            raise ValueError("shard_hop_time must be >= 0")
        if self.dependence_table_entries_per_shard is not None:
            if self.dependence_table_entries_per_shard < 1:
                raise ValueError("dependence_table_entries_per_shard must be >= 1")
        if self.retire_pipeline_depth > 1 and not self.use_sharded_maestro:
            raise ValueError(
                "retire_pipeline_depth > 1 requires the sharded Maestro "
                "engine (set maestro_shards > 1 or force_sharded_maestro); "
                "the single-Maestro machine would silently ignore it"
            )
        if self.task_pool_ports is not None and self.task_pool_ports < 1:
            raise ValueError("task_pool_ports must be >= 1")
        if self.td_cache_entries < 0:
            raise ValueError(
                f"td_cache_entries must be >= 0, got {self.td_cache_entries}"
            )
        if self.td_prefetch_depth < 1:
            raise ValueError(
                f"td_prefetch_depth must be >= 1, got {self.td_prefetch_depth}"
            )
        if self.use_fast_dispatch and not self.use_sharded_maestro:
            raise ValueError(
                "the fast-dispatch subsystem (td_cache_entries > 0 or "
                "kickoff_fast_path) requires the sharded Maestro engine "
                "(set maestro_shards > 1 or force_sharded_maestro); the "
                "single-Maestro machine would silently ignore it"
            )
        if self.finish_coalesce_limit < 1:
            raise ValueError(
                f"finish_coalesce_limit must be >= 1, got "
                f"{self.finish_coalesce_limit}"
            )
        if self.finish_coalesce_window < 0:
            raise ValueError(
                f"finish_coalesce_window must be >= 0, got "
                f"{self.finish_coalesce_window}"
            )
        if self.finish_coalesce_window > 0 and self.finish_coalesce_limit == 1:
            raise ValueError(
                "finish_coalesce_window > 0 needs finish_coalesce_limit > 1: "
                "a batch window with a one-notification batch limit would "
                "silently add latency and coalesce nothing"
            )
        if self.check_coalesce_limit < 1:
            raise ValueError(
                f"check_coalesce_limit must be >= 1, got "
                f"{self.check_coalesce_limit}"
            )
        if self.check_coalesce_window < 0:
            raise ValueError(
                f"check_coalesce_window must be >= 0, got "
                f"{self.check_coalesce_window}"
            )
        if self.check_coalesce_window > 0 and self.check_coalesce_limit == 1:
            raise ValueError(
                "check_coalesce_window > 0 needs check_coalesce_limit > 1: "
                "a batch window with a one-probe batch limit would silently "
                "add latency and coalesce nothing"
            )
        if self.use_check_pipeline and not self.use_sharded_maestro:
            raise ValueError(
                "the decentralized check scatter and check-side coalescing "
                "(decentralized_check_scatter or check_coalesce_limit > 1) "
                "require the sharded Maestro engine (set maestro_shards > 1 "
                "or force_sharded_maestro); the single-Maestro machine has "
                "no Check Scatter to decentralize"
            )
        if self.telemetry_window < 0:
            raise ValueError(
                f"telemetry_window must be >= 0, got {self.telemetry_window}"
            )
        if self.sim_kernel not in ("heap", "wheel"):
            raise ValueError(
                f"unknown sim_kernel {self.sim_kernel!r}; "
                "expected 'heap' or 'wheel'"
            )
        if self.locality_stealing and not self.use_sharded_maestro:
            raise ValueError(
                "locality_stealing=True requires the sharded Maestro "
                "engine (set maestro_shards > 1 or force_sharded_maestro); "
                "the single-Maestro machine has no stealing scheduler and "
                "would silently ignore it"
            )

    # ---- derived quantities -----------------------------------------------------------

    @property
    def nexus_cycle(self) -> int:
        """Nexus++ clock cycle time in picoseconds (2 ns at 500 MHz)."""
        return round(1e12 / self.nexus_clock_hz)

    @property
    def core_cycle(self) -> int:
        """Worker core clock cycle time in picoseconds."""
        return round(1e12 / self.core_clock_hz)

    @property
    def task_pool_bytes(self) -> int:
        """Task Pool storage (Table IV: 78 KB for 1K TDs)."""
        return self.task_pool_entries * self.td_bytes

    @property
    def dependence_table_bytes(self) -> int:
        """Dependence Table storage (Table IV: 112 KB for 4K entries)."""
        return self.dependence_table_entries * self.dt_entry_bytes

    @property
    def use_sharded_maestro(self) -> bool:
        """True when the machine should wire the sharded Maestro subsystem."""
        return self.maestro_shards > 1 or self.force_sharded_maestro

    @property
    def use_parallel_frontend(self) -> bool:
        """True when the machine wires per-master TDs buffers plus the
        program-order merge unit (a single master feeds Write TP directly)."""
        return self.master_cores > 1

    @property
    def master_buffer_entries(self) -> int:
        """Per-master TDs buffer depth: the TDs Sizes list split evenly
        (ceiling) across the master cores, so total front-end buffering
        stays comparable to the single-master machine."""
        return -(-self.tds_sizes_list_entries // self.master_cores)

    @property
    def tp_ports(self) -> int:
        """Effective Task Pool port count (one per per-shard ticket slot —
        ``retire_pipeline_depth`` — when ``task_pool_ports`` derives)."""
        if self.task_pool_ports is not None:
            return self.task_pool_ports
        return self.retire_pipeline_depth

    @property
    def use_fast_dispatch(self) -> bool:
        """True when the machine should wire the fast-dispatch subsystem
        (TD prefetch caches and/or the kick-off fast path)."""
        return self.td_cache_entries > 0 or self.kickoff_fast_path

    @property
    def use_resolve_pipeline(self) -> bool:
        """True when a staged-resolve optimization is on (finish-notification
        coalescing and/or speculative kick-off); False is the paper-exact
        serial resolve loop on both engines."""
        return self.finish_coalesce_limit > 1 or self.speculative_kickoff

    @property
    def use_check_pipeline(self) -> bool:
        """True when a check-path optimization is on (the decentralized
        check scatter and/or check-side coalescing); False is the central
        program-ordered scatter sequencer with one-probe-at-a-time check
        engines — the pre-decentralization machine exactly."""
        return self.decentralized_check_scatter or self.check_coalesce_limit > 1

    @property
    def steal_locality(self) -> bool:
        """Effective work-stealing policy: locality-aware when requested
        explicitly, else it follows the fast-dispatch subsystem (``None``
        keeps the subsystem-off machine cycle-exact)."""
        if self.locality_stealing is not None:
            return self.locality_stealing
        return self.use_fast_dispatch

    @property
    def dt_entries_per_shard(self) -> int:
        """Dependence Table capacity owned by each Maestro shard."""
        if self.dependence_table_entries_per_shard is not None:
            return self.dependence_table_entries_per_shard
        return -(-self.dependence_table_entries // self.maestro_shards)

    @property
    def memory_bandwidth_bytes_per_s(self) -> float:
        """Per-accessor off-chip bandwidth (128 B / 12 ns = 10.67 GB/s)."""
        return self.memory_chunk_bytes / (self.off_chip_access_time * 1e-12)

    def submission_time(self, n_params: int) -> int:
        """Master-to-Maestro submission delay for a task with ``n_params``.

        ``formula`` follows §IV prose: handshake + 2 cycles per word with
        one leading word for ID/function pointer.  ``fitted`` matches the
        paper's worked examples (10 cycles @ 4 params, 14 @ 8).
        """
        return self.batch_submission_time([n_params])

    def batch_submission_time(self, param_counts: "list[int]") -> int:
        """Submission delay for one bus transaction carrying a batch of
        descriptors (``param_counts`` parameters each).

        One handshake opens the transaction; every descriptor then costs
        its header word plus one word per parameter, so a batch of one is
        exactly :meth:`submission_time` and larger batches amortize the
        handshake.  The ``fitted`` model decomposes its ``6 + nP`` cycles
        as a 5-cycle handshake plus ``1 + nP`` word cycles.
        """
        if not param_counts:
            return 0
        words = sum(1 + n for n in param_counts)
        if self.bus_model == BUS_MODEL_FITTED:
            cycles = 5 + words
        else:
            cycles = self.bus_handshake_cycles + self.bus_word_cycles * words
        return cycles * self.nexus_cycle

    def td_transfer_time(self, n_params: int) -> int:
        """Maestro-to-Task-Controller TD transfer delay (same bus geometry)."""
        cycles = self.bus_handshake_cycles + self.bus_word_cycles * (1 + n_params)
        return cycles * self.nexus_cycle

    def exec_time_for_flops(self, flops: float) -> int:
        """Execution time of a task of ``flops`` on one worker core (ps)."""
        return max(1, round(flops / self.core_gflops * 1_000))  # flops/GFLOPS -> ns -> ps

    def memory_time_for_bytes(self, n_bytes: int) -> int:
        """Uncontended off-chip transfer time for ``n_bytes`` (whole chunks)."""
        if n_bytes <= 0:
            return 0
        chunks = -(-n_bytes // self.memory_chunk_bytes)
        return chunks * self.off_chip_access_time

    # ---- convenience ------------------------------------------------------------------

    def with_(self, **changes: Any) -> "SystemConfig":
        """Return a copy with the given fields replaced (frozen dataclass)."""
        return replace(self, **changes)

    def table_iv(self) -> list[tuple[str, str]]:
        """Render the configuration as the paper's Table IV rows.

        Sharded-Maestro machines (an extension beyond the paper) append
        their extra geometry below the paper's rows.
        """
        extra: list[tuple[str, str]] = []
        if self.use_parallel_frontend or self.submission_batch > 1:
            extra += [
                ("Master cores", str(self.master_cores)),
                ("Submission batch", f"{self.submission_batch} TDs/transaction"),
                (
                    "Per-master TDs buffer",
                    f"{self.master_buffer_entries} entries",
                ),
            ]
        if self.use_sharded_maestro:
            extra += [
                ("Maestro shards", str(self.maestro_shards)),
                ("Shard hop latency", f"{self.shard_hop_time / NS:g}ns"),
                (
                    "Dependence Table per shard",
                    f"{self.dt_entries_per_shard} entries",
                ),
                ("Shard inbox depth", str(self.shard_inbox_entries)),
                ("Retire pipeline depth", str(self.retire_pipeline_depth)),
                ("Task Pool ports", str(self.tp_ports)),
            ]
        if self.use_fast_dispatch:
            extra += [
                ("TD prefetch cache", f"{self.td_cache_entries} TDs/shard"),
                ("TD prefetch depth", f"DC <= {self.td_prefetch_depth}"),
                ("Kick-off fast path", "on" if self.kickoff_fast_path else "off"),
                (
                    "Steal policy",
                    "locality" if self.steal_locality else "ticket",
                ),
            ]
        if self.use_resolve_pipeline:
            extra += [
                (
                    "Finish coalesce limit",
                    f"{self.finish_coalesce_limit} notifications/batch",
                ),
                (
                    "Finish coalesce window",
                    f"{self.finish_coalesce_window / NS:g}ns",
                ),
                (
                    "Speculative kick-off",
                    "on" if self.speculative_kickoff else "off",
                ),
            ]
        if self.use_check_pipeline:
            extra += [
                (
                    "Check scatter",
                    "decentralized"
                    if self.decentralized_check_scatter
                    else "central",
                ),
                (
                    "Check coalesce limit",
                    f"{self.check_coalesce_limit} probes/batch",
                ),
                (
                    "Check coalesce window",
                    f"{self.check_coalesce_window / NS:g}ns",
                ),
            ]
        return [
            ("Cores clock freq.", f"{self.core_clock_hz / 1e9:g} GHz"),
            ("Nexus++ clock freq.", f"{self.nexus_clock_hz / 1e6:g} MHz"),
            ("On Chip Access Time", f"{self.on_chip_access_time / NS:g}ns"),
            ("Off Chip Access Time", f"{self.off_chip_access_time / NS:g}ns"),
            ("On chip bus bandwidth", "2 GB/s"),
            ("Memory bandwidth", f"{self.memory_bandwidth_bytes_per_s / 2**30:.2f} GB/s"),
            ("Task Descriptor (TD) size", f"{self.td_bytes} Byte"),
            (
                "Task Pool size",
                f"{self.task_pool_bytes // 1024} KB ({self.task_pool_entries} TDs)",
            ),
            ("No. Parameters per TD", str(self.max_params_per_td)),
            ("Dependence Table entry size", f"{self.dt_entry_bytes} Byte"),
            (
                "Dependence Table size",
                f"{self.dependence_table_bytes // 1024} KB "
                f"({self.dependence_table_entries} entries)",
            ),
            ("Kick-Off list size", f"{self.kickoff_list_size} task IDs"),
            ("Workers", str(self.workers)),
            ("Buffering depth", str(self.buffering_depth)),
        ] + extra
