"""Software-RTS baseline: the bottleneck Nexus/Nexus++ exists to remove.

The Nexus work [10] measured that a software StarSs runtime (CellSs-style)
spends on the order of microseconds of *master-core* time per task on
descriptor creation, dependence resolution and completion handling — and
that this serial per-task cost caps the scalability of the whole system.

This module models that runtime on the same Task Machine substrate: all
runtime operations (task submission + dependence resolution, completion
handling) serialize on the master core with configurable costs, while
worker cores execute tasks with the same memory model as the Nexus++
machine.  Comparing :func:`run_software_rts` against
:class:`~repro.machine.NexusMachine` on the same trace reproduces the
motivation experiment: hardware task management keeps scaling where the
software RTS flattens out.

Default costs follow the Nexus paper's CellSs measurements (microseconds
per task, dominated by graph bookkeeping on the master).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import SystemConfig
from ..hw.memory import MemorySystem
from ..machine.results import RunResult, Scoreboard
from ..sim import US, DeadlockError, Fifo, Resource, Simulator
from ..traces.trace import TaskTrace
from .task_graph import TaskGraph, build_task_graph

__all__ = ["SoftwareRTSConfig", "run_software_rts"]


@dataclass(frozen=True)
class SoftwareRTSConfig:
    """Per-task costs of the software runtime, in picoseconds."""

    #: Master time to create a task and resolve its dependencies.
    submit_cost: int = 2 * US
    #: Extra master time per task parameter during resolution.
    per_param_cost: int = 200_000  # 0.2 us
    #: Master time to handle one task completion (graph update, wake-ups).
    finish_cost: int = int(1.5 * US)

    def __post_init__(self) -> None:
        if min(self.submit_cost, self.per_param_cost, self.finish_cost) < 0:
            raise ValueError("costs must be >= 0")


def run_software_rts(
    trace: TaskTrace,
    config: Optional[SystemConfig] = None,
    rts: Optional[SoftwareRTSConfig] = None,
    graph: Optional[TaskGraph] = None,
) -> RunResult:
    """Simulate the trace under a software StarSs runtime.

    Uses the golden task graph for dependence semantics (the software RTS
    is assumed functionally correct; only its *cost* is modeled) and the
    same banked memory as the Nexus++ machine.
    """
    cfg = config or SystemConfig()
    rts_cfg = rts or SoftwareRTSConfig()
    g = graph or build_task_graph(trace)

    sim = Simulator()
    scoreboard = Scoreboard(len(trace))
    memory = MemorySystem(sim, cfg)
    #: All runtime bookkeeping serializes on the master core.
    master_port = Resource(sim, 1, name="master-core")
    ready: Fifo = Fifo(sim, None, "ready-tasks")
    remaining = [len(g.predecessors[t]) for t in range(len(trace))]
    done = {"master": 0}

    def master():
        for task in trace:
            yield master_port.acquire()
            cost = (
                cfg.task_prep_time
                + rts_cfg.submit_cost
                + rts_cfg.per_param_cost * task.n_params
            )
            yield sim.timeout(cost)
            master_port.release()
            scoreboard.records[task.tid].submitted = sim.now
            scoreboard.records[task.tid].stored = sim.now
            if remaining[task.tid] == 0:
                scoreboard.records[task.tid].ready = sim.now
                yield ready.put(task.tid)
        done["master"] = sim.now

    def finish(tid: int):
        """Completion handling on the master core."""
        yield master_port.acquire()
        yield sim.timeout(rts_cfg.finish_cost)
        released = []
        for s in g.successors[tid]:
            remaining[s] -= 1
            if remaining[s] == 0 and scoreboard.records[s].submitted >= 0:
                released.append(s)
        master_port.release()
        for s in released:
            scoreboard.records[s].ready = sim.now
            yield ready.put(s)
        scoreboard.note_completed(tid, sim.now)

    def worker(core: int):
        while True:
            tid = yield ready.get()
            task = trace[tid]
            record = scoreboard.records[tid]
            record.core = core
            record.dispatched = sim.now
            record.fetch_start = sim.now
            yield from memory.transfer(task.read_time)
            record.exec_start = sim.now
            yield sim.timeout(task.exec_time)
            record.exec_end = sim.now
            yield from memory.transfer(task.write_time)
            record.writeback_end = sim.now
            sim.process(finish(tid), name=f"rts-finish-{tid}")

    sim.process(master(), name="rts-master")
    for core in range(cfg.workers):
        sim.process(worker(core), name=f"rts-worker-{core}")

    try:
        sim.run()
    except DeadlockError:
        if not scoreboard.all_done:
            raise

    return RunResult(
        trace_name=f"{trace.name}+software-rts",
        workers=cfg.workers,
        makespan=scoreboard.last_completion,
        master_done=done["master"],
        records=scoreboard.records,
        stats={"memory": memory.stats()},
        config_notes={
            "rts": "software",
            "submit_cost": rts_cfg.submit_cost,
            "finish_cost": rts_cfg.finish_cost,
        },
    )
