"""Golden-model task graph: StarSs dependence semantics in plain software.

This is the reference the hardware model is differentially tested against.
It applies the same rules as the paper's Listing 2, expressed directly:

* a task **reading** address A depends on the most recent preceding task
  (in serial program order) that **writes** A;
* a task **writing** A depends on that writer *and* on every reader of A
  since that writer (WAR), and then becomes the new "last writer" (WAW);
* ``inout`` parameters are both.

Note the hardware queues a late reader behind a *waiting* writer (the
writer-waits flag); that is the same partial order as "reader depends on
last preceding writer", because the queued writer precedes the reader in
program order.  The equivalence is exercised by the differential tests.

Besides edges, this module computes scheduling-theoretic quantities used by
the analysis layer and the test oracles: critical path length, maximum/
average parallelism profile, and a greedy list-schedule makespan for a
P-core machine (an upper bound a correct Nexus++ run must beat or match
up to modelled overheads... and a sanity lower bound via work/P).
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..traces.trace import TaskTrace

__all__ = ["TaskGraph", "build_task_graph", "DependenceKind"]


class DependenceKind:
    """Edge labels (true/anti/output dependencies)."""

    RAW = "RAW"
    WAR = "WAR"
    WAW = "WAW"


@dataclass
class TaskGraph:
    """Immutable dependence DAG over a trace, with analysis helpers."""

    trace: TaskTrace
    #: successors[tid] -> set of dependent task ids.
    successors: List[Set[int]]
    #: predecessors[tid] -> set of prerequisite task ids.
    predecessors: List[Set[int]]
    #: Edge kinds keyed by (pred, succ); a pair may carry several hazards,
    #: the strongest (RAW > WAW > WAR) is kept.
    edge_kinds: Dict[Tuple[int, int], str] = field(default_factory=dict)

    # ---- basic queries ----------------------------------------------------------

    @property
    def n_tasks(self) -> int:
        return len(self.trace)

    @property
    def n_edges(self) -> int:
        return sum(len(s) for s in self.successors)

    def in_degree(self, tid: int) -> int:
        return len(self.predecessors[tid])

    def roots(self) -> List[int]:
        """Tasks with no prerequisites (ready at time zero)."""
        return [t for t in range(self.n_tasks) if not self.predecessors[t]]

    def is_edge(self, pred: int, succ: int) -> bool:
        return succ in self.successors[pred]

    # ---- scheduling-theoretic bounds ---------------------------------------------

    def task_cost(self, tid: int) -> int:
        """Serial per-task cost used in bounds: exec plus memory phases."""
        t = self.trace[tid]
        return t.exec_time + t.read_time + t.write_time

    @property
    def total_work(self) -> int:
        """T1: serial execution time of the whole trace."""
        return sum(self.task_cost(t) for t in range(self.n_tasks))

    def critical_path(self) -> int:
        """T-infinity: longest cost-weighted path through the DAG."""
        n = self.n_tasks
        finish = [0] * n
        for tid in range(n):  # tids are a topological order (program order)
            start = 0
            for p in self.predecessors[tid]:
                if finish[p] > start:
                    start = finish[p]
            finish[tid] = start + self.task_cost(tid)
        return max(finish) if n else 0

    def list_schedule_makespan(self, cores: int) -> int:
        """Greedy list-schedule makespan on ``cores`` identical cores.

        Graham-style earliest-finish assignment; an achievable (not optimal)
        makespan that bounds what an ideal zero-overhead runtime could do.
        """
        if cores < 1:
            raise ValueError("cores must be >= 1")
        n = self.n_tasks
        indeg = [len(self.predecessors[t]) for t in range(n)]
        ready: List[int] = [t for t in range(n) if indeg[t] == 0]
        heapq.heapify(ready)
        core_free = [0] * cores  # heap of core-available times
        heapq.heapify(core_free)
        earliest = [0] * n
        finish = [0] * n
        done = 0
        # Event-driven: pop the ready task with the smallest id, run it on the
        # earliest-available core no sooner than its data-ready time.
        pending: List[Tuple[int, int]] = []  # (ready_time, tid) not yet startable
        while done < n:
            if not ready:
                # Advance time to the next pending task.
                t_ready, tid = heapq.heappop(pending)
                heapq.heappush(ready, tid)
                earliest[tid] = max(earliest[tid], t_ready)
                continue
            tid = heapq.heappop(ready)
            core_at = heapq.heappop(core_free)
            start = max(core_at, earliest[tid])
            end = start + self.task_cost(tid)
            finish[tid] = end
            heapq.heappush(core_free, end)
            done += 1
            for s in self.successors[tid]:
                indeg[s] -= 1
                earliest[s] = max(earliest[s], end)
                if indeg[s] == 0:
                    heapq.heappush(pending, (earliest[s], s))
            # Promote pending tasks whose ready time has passed the earliest
            # core availability (cheap heuristic; exactness is not needed for
            # a bound).
            while pending and pending[0][0] <= start:
                _, p = heapq.heappop(pending)
                heapq.heappush(ready, p)
        return max(finish) if n else 0

    def parallelism_profile(self) -> List[int]:
        """Number of tasks at each unit-cost dataflow step.

        Uses unit task costs (pure graph shape): profile[s] = tasks whose
        longest prerequisite chain has length s.  For the wavefront this is
        the paper's "ramping effect" curve.
        """
        n = self.n_tasks
        depth = [0] * n
        for tid in range(n):
            d = 0
            for p in self.predecessors[tid]:
                if depth[p] + 1 > d:
                    d = depth[p] + 1
            depth[tid] = d
        profile: Dict[int, int] = defaultdict(int)
        for d in depth:
            profile[d] += 1
        return [profile[s] for s in range(max(profile) + 1)] if n else []

    def max_parallelism(self) -> int:
        return max(self.parallelism_profile()) if self.n_tasks else 0

    def average_parallelism(self) -> float:
        prof = self.parallelism_profile()
        return self.n_tasks / len(prof) if prof else 0.0

    # ---- validation helpers ---------------------------------------------------------

    def check_schedule(
        self,
        start_times: Sequence[int],
        finish_times: Sequence[int],
    ) -> List[str]:
        """Return a list of dependence violations for a simulated schedule.

        A legal schedule starts every task no earlier than the finish of all
        its predecessors.  Empty list = legal.
        """
        problems = []
        if len(start_times) != self.n_tasks or len(finish_times) != self.n_tasks:
            problems.append(
                f"schedule covers {len(start_times)} tasks, trace has {self.n_tasks}"
            )
            return problems
        for succ in range(self.n_tasks):
            for pred in self.predecessors[succ]:
                if finish_times[pred] > start_times[succ]:
                    kind = self.edge_kinds.get((pred, succ), "?")
                    problems.append(
                        f"{kind} violation: task {succ} started at "
                        f"{start_times[succ]} before task {pred} finished at "
                        f"{finish_times[pred]}"
                    )
        return problems


_KIND_RANK = {DependenceKind.WAR: 0, DependenceKind.WAW: 1, DependenceKind.RAW: 2}


def build_task_graph(trace: TaskTrace) -> TaskGraph:
    """Run the golden dependence analysis over a trace in program order."""
    n = len(trace)
    successors: List[Set[int]] = [set() for _ in range(n)]
    predecessors: List[Set[int]] = [set() for _ in range(n)]
    edge_kinds: Dict[Tuple[int, int], str] = {}

    last_writer: Dict[int, int] = {}
    readers_since_write: Dict[int, List[int]] = defaultdict(list)

    def add_edge(pred: int, succ: int, kind: str) -> None:
        if pred == succ:
            return
        successors[pred].add(succ)
        predecessors[succ].add(pred)
        key = (pred, succ)
        old = edge_kinds.get(key)
        if old is None or _KIND_RANK[kind] > _KIND_RANK[old]:
            edge_kinds[key] = kind

    for task in trace:
        tid = task.tid
        # De-duplicate addresses within one task: a repeated address acts
        # with its strongest combined mode (reads if any param reads, writes
        # if any writes) — matches the hardware, which processes parameters
        # sequentially against the table.
        seen: Dict[int, Tuple[bool, bool]] = {}
        for p in task.params:
            r, w = seen.get(p.addr, (False, False))
            seen[p.addr] = (r or p.mode.reads, w or p.mode.writes)
        for addr, (reads, writes) in seen.items():
            if reads:
                w = last_writer.get(addr)
                if w is not None:
                    add_edge(w, tid, DependenceKind.RAW)
            if writes:
                w = last_writer.get(addr)
                if w is not None:
                    add_edge(w, tid, DependenceKind.WAW)
                for r in readers_since_write[addr]:
                    add_edge(r, tid, DependenceKind.WAR)
                last_writer[addr] = tid
                readers_since_write[addr] = []
            if reads and not writes:
                readers_since_write[addr].append(tid)

    return TaskGraph(trace, successors, predecessors, edge_kinds)
