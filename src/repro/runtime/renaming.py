"""Segment renaming: eliminating WAR/WAW hazards before the hardware.

§III-B: "Although the WAR hazards and the write-after-write WAW hazards
are false dependencies and are normally resolved using renaming
techniques, Nexus++ supports them as a safe guard."  The paper leaves
renaming to the runtime; this module implements it, so the cost of *not*
renaming (serialisation on false dependencies) can be measured — see
``benchmarks/bench_renaming_ablation.py``.

The transformation is the classic SSA-style one: every write to a segment
creates a fresh *version* at a fresh base address; reads bind to the
version current at their point in program order.  True (RAW) dependencies
are preserved exactly; WAR and WAW edges vanish because no two tasks ever
write the same address.

The renamed trace is what a renaming StarSs runtime would submit to
Nexus++; the hardware needs no change (it simply sees more distinct
addresses, so renaming trades Dependence Table pressure for parallelism —
also measurable).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..traces.trace import AccessMode, Param, TaskTrace, TraceTask

__all__ = ["rename_trace", "count_false_dependencies"]


def _fresh_address(base: int, version: int, version_stride: int) -> int:
    return base + version * version_stride


def rename_trace(
    trace: TaskTrace,
    version_stride: int = 1 << 32,
    name: Optional[str] = None,
) -> TaskTrace:
    """Return an equivalent trace with all WAR/WAW hazards renamed away.

    ``version_stride`` separates versions of the same segment in the
    synthetic address space; it must exceed every segment size (the
    default leaves the low 32 bits for the original addresses).
    """
    if version_stride <= 0:
        raise ValueError("version_stride must be positive")
    for task in trace:
        for p in task.params:
            if p.size > version_stride:
                raise ValueError(
                    f"segment {p.addr:#x} larger than version stride"
                )
    current_version: Dict[int, int] = {}
    renamed = []
    for task in trace:
        params = []
        # Bind reads to current versions first, then bump written segments:
        # within one task a read of an inout sees the *previous* version
        # and its write creates the next one.
        bumps: Dict[int, int] = {}
        for p in task.params:
            version = current_version.get(p.addr, 0)
            if p.mode == AccessMode.IN:
                params.append(
                    Param(_fresh_address(p.addr, version, version_stride), p.size, p.mode)
                )
            else:
                new_version = version + 1
                bumps[p.addr] = new_version
                if p.mode == AccessMode.INOUT:
                    # The read half still references the old version; the
                    # hardware tracks one address per param, so an inout
                    # splits into in(old version) + out(new version).
                    params.append(
                        Param(
                            _fresh_address(p.addr, version, version_stride),
                            p.size,
                            AccessMode.IN,
                        )
                    )
                params.append(
                    Param(
                        _fresh_address(p.addr, new_version, version_stride),
                        p.size,
                        AccessMode.OUT,
                    )
                )
        current_version.update(bumps)
        renamed.append(
            TraceTask(
                tid=task.tid,
                func=task.func,
                params=tuple(params),
                exec_time=task.exec_time,
                read_time=task.read_time,
                write_time=task.write_time,
            )
        )
    return TaskTrace(
        name or f"{trace.name}+renamed",
        renamed,
        meta={**trace.meta, "renamed": True},
    )


def count_false_dependencies(trace: TaskTrace) -> Tuple[int, int, int]:
    """Count (RAW, WAR, WAW) edges in the trace's dependence graph."""
    from .task_graph import DependenceKind, build_task_graph

    graph = build_task_graph(trace)
    counts = {DependenceKind.RAW: 0, DependenceKind.WAR: 0, DependenceKind.WAW: 0}
    for kind in graph.edge_kinds.values():
        counts[kind] += 1
    return counts[DependenceKind.RAW], counts[DependenceKind.WAR], counts[DependenceKind.WAW]
