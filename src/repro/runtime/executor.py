"""Functional dataflow executor: really runs recorded StarSs programs.

This is the software analogue of what Nexus++ accelerates: it resolves the
recorded tasks' dependencies (same Listing-2 semantics as the golden task
graph) and executes them on a thread pool, releasing each task the moment
its predecessors retire.  It exists to demonstrate that the programming
model is *functional* — the Gaussian-elimination and wavefront examples
compute real results that are validated against NumPy/SciPy references.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..frontend.program import RecordedTask, StarSsProgram

__all__ = ["DataflowExecutor", "ExecutionReport"]


@dataclass
class ExecutionReport:
    """What a functional execution observed."""

    n_tasks: int
    order: List[int] = field(default_factory=list)
    max_concurrency: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors and len(self.order) == self.n_tasks


class DataflowExecutor:
    """Dependence-driven threaded execution of a recorded program."""

    def __init__(self, workers: int = 4):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    # ---- dependence analysis (program order, StarSs rules) -----------------------

    @staticmethod
    def _build_edges(program: StarSsProgram) -> List[Set[int]]:
        """predecessors[tid] from object identities + barrier epochs."""
        n = len(program.tasks)
        predecessors: List[Set[int]] = [set() for _ in range(n)]
        last_writer: Dict[int, int] = {}
        readers: Dict[int, List[int]] = defaultdict(list)
        epoch_last_task: Dict[int, int] = {}
        for task in program.tasks:
            tid = task.tid
            # Barrier: depend on every task of earlier epochs (transitively
            # it suffices to depend on all tasks of the previous epoch).
            if task.epoch > 0:
                for prev in range(n):
                    if (
                        program.tasks[prev].epoch < task.epoch
                        and program.tasks[prev].epoch == task.epoch - 1
                    ):
                        predecessors[tid].add(prev)
            for obj, mode in task.accesses:
                key = id(obj)
                if mode.reads:
                    w = last_writer.get(key)
                    if w is not None:
                        predecessors[tid].add(w)
                if mode.writes:
                    w = last_writer.get(key)
                    if w is not None:
                        predecessors[tid].add(w)
                    for r in readers[key]:
                        predecessors[tid].add(r)
                    last_writer[key] = tid
                    readers[key] = []
                if mode.reads and not mode.writes:
                    readers[key].append(tid)
            epoch_last_task[task.epoch] = tid
        for preds in predecessors:
            preds.discard(-1)
        return predecessors

    # ---- execution ------------------------------------------------------------------

    def execute(self, program: StarSsProgram) -> ExecutionReport:
        """Run every recorded task; returns an :class:`ExecutionReport`.

        Raises nothing on task exceptions — they are collected in the
        report so callers can assert on ``report.ok``.
        """
        tasks = program.tasks
        report = ExecutionReport(n_tasks=len(tasks))
        if not tasks:
            return report
        predecessors = self._build_edges(program)
        successors: List[List[int]] = [[] for _ in tasks]
        remaining = [len(p) for p in predecessors]
        for tid, preds in enumerate(predecessors):
            for p in preds:
                successors[p].append(tid)

        lock = threading.Lock()
        done_event = threading.Event()
        state = {"running": 0, "finished": 0}

        def run_one(task: RecordedTask, pool: ThreadPoolExecutor) -> None:
            try:
                task.spec.func(*task.args, **task.kwargs)
            except Exception as exc:  # collected, not raised
                with lock:
                    report.errors.append(f"{task.name}: {exc!r}")
            finally:
                with lock:
                    report.order.append(task.tid)
                    state["running"] -= 1
                    state["finished"] += 1
                    ready = []
                    for s in successors[task.tid]:
                        remaining[s] -= 1
                        if remaining[s] == 0:
                            ready.append(s)
                    for s in ready:
                        state["running"] += 1
                        report.max_concurrency = max(
                            report.max_concurrency, state["running"]
                        )
                    if state["finished"] == len(tasks):
                        done_event.set()
                for s in ready:
                    pool.submit(run_one, tasks[s], pool)

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            roots = [tid for tid, r in enumerate(remaining) if r == 0]
            if not roots:
                raise RuntimeError("no root tasks: dependence cycle?")
            with lock:
                state["running"] = len(roots)
                report.max_concurrency = len(roots)
            for tid in roots:
                pool.submit(run_one, tasks[tid], pool)
            done_event.wait()
        return report

    def execute_serial(self, program: StarSsProgram) -> ExecutionReport:
        """Run tasks one by one in program order (the reference semantics)."""
        report = ExecutionReport(n_tasks=len(program.tasks))
        report.max_concurrency = 1 if program.tasks else 0
        for task in program.tasks:
            try:
                task.spec.func(*task.args, **task.kwargs)
            except Exception as exc:
                report.errors.append(f"{task.name}: {exc!r}")
            report.order.append(task.tid)
        return report
