"""Software runtime layer: golden task graph, functional executor,
software-RTS timing baseline."""

from .executor import DataflowExecutor, ExecutionReport
from .software_rts import SoftwareRTSConfig, run_software_rts
from .task_graph import DependenceKind, TaskGraph, build_task_graph

__all__ = [
    "TaskGraph",
    "build_task_graph",
    "DependenceKind",
    "DataflowExecutor",
    "ExecutionReport",
    "SoftwareRTSConfig",
    "run_software_rts",
]
