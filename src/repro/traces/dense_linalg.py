"""Blocked dense linear algebra workloads (extension beyond the paper).

The StarSs literature's flagship benchmarks are blocked Cholesky and
blocked LU factorisations (e.g. the Task Superscalar paper the evaluation
compares table sizes against).  The paper's own future work asks for
"more versatile" workloads; these generators provide them in the same
trace format, so the reproduction can evaluate Nexus++ on the task graphs
the follow-on papers (Picos) used.

Blocked Cholesky of an N x N matrix in B x B tiles (T = N/B tiles/side),
right-looking variant, per step k:

* ``potrf(A[k][k])``                      — 1/3 B^3 flops
* ``trsm(A[k][k], A[i][k])``  i > k       — B^3 flops
* ``syrk(A[i][k], A[i][i])``  i > k       — B^3 flops (herk)
* ``gemm(A[i][k], A[j][k], A[i][j])``  i > j > k — 2 B^3 flops

Blocked LU (no pivoting) is analogous with getrf/trsm-row/trsm-col/gemm.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from .trace import AccessMode, Param, TaskTrace, TraceTask

__all__ = ["cholesky_trace", "blocked_lu_trace", "cholesky_task_count"]

_POTRF, _TRSM, _SYRK, _GEMM = 0xC401, 0xC402, 0xC403, 0xC404
_GETRF, _TRSM_R, _TRSM_C = 0xC405, 0xC406, 0xC407
_FLOAT = 8


def cholesky_task_count(tiles: int) -> int:
    """potrf + trsm + syrk + gemm counts for a ``tiles x tiles`` grid."""
    t = tiles
    potrf = t
    trsm = t * (t - 1) // 2
    syrk = trsm
    gemm = t * (t - 1) * (t - 2) // 6
    return potrf + trsm + syrk + gemm


class _TileSpace:
    """Base addresses for a triangular/square tile grid."""

    def __init__(self, tiles: int, tile_bytes: int, base: int = 0x40_000_000):
        self.tiles = tiles
        self.tile_bytes = tile_bytes
        self.base = base

    def addr(self, i: int, j: int) -> int:
        return self.base + (i * self.tiles + j) * self.tile_bytes


def _times(cfg: SystemConfig, flops: float, read_tiles: int, write_tiles: int, tile_bytes: int):
    return (
        cfg.exec_time_for_flops(flops),
        cfg.memory_time_for_bytes(read_tiles * tile_bytes),
        cfg.memory_time_for_bytes(write_tiles * tile_bytes),
    )


def cholesky_trace(
    tiles: int,
    tile_size: int = 64,
    config: Optional[SystemConfig] = None,
    name: Optional[str] = None,
) -> TaskTrace:
    """Blocked right-looking Cholesky factorisation task graph."""
    if tiles < 1:
        raise ValueError("need at least one tile")
    if tile_size < 1:
        raise ValueError("tile_size must be positive")
    cfg = config or SystemConfig()
    b3 = float(tile_size) ** 3
    tile_bytes = tile_size * tile_size * _FLOAT
    space = _TileSpace(tiles, tile_bytes)
    tasks: List[TraceTask] = []

    def emit(func, flops, reads, writes):
        params = [Param(space.addr(i, j), tile_bytes, AccessMode.IN) for i, j in reads]
        params += [
            Param(space.addr(i, j), tile_bytes, AccessMode.INOUT) for i, j in writes
        ]
        e, r, w = _times(cfg, flops, len(reads) + len(writes), len(writes), tile_bytes)
        tasks.append(TraceTask(len(tasks), func, tuple(params), e, r, w))

    for k in range(tiles):
        emit(_POTRF, b3 / 3.0, [], [(k, k)])
        for i in range(k + 1, tiles):
            emit(_TRSM, b3, [(k, k)], [(i, k)])
        for i in range(k + 1, tiles):
            emit(_SYRK, b3, [(i, k)], [(i, i)])
            for j in range(k + 1, i):
                emit(_GEMM, 2.0 * b3, [(i, k), (j, k)], [(i, j)])

    assert len(tasks) == cholesky_task_count(tiles)
    return TaskTrace(
        name or f"cholesky-{tiles}x{tiles}",
        tasks,
        meta={
            "pattern": "cholesky",
            "tiles": tiles,
            "tile_size": tile_size,
            "task_count": len(tasks),
        },
    )


def blocked_lu_trace(
    tiles: int,
    tile_size: int = 64,
    config: Optional[SystemConfig] = None,
    name: Optional[str] = None,
) -> TaskTrace:
    """Blocked LU factorisation (no pivoting) task graph."""
    if tiles < 1:
        raise ValueError("need at least one tile")
    if tile_size < 1:
        raise ValueError("tile_size must be positive")
    cfg = config or SystemConfig()
    b3 = float(tile_size) ** 3
    tile_bytes = tile_size * tile_size * _FLOAT
    space = _TileSpace(tiles, tile_bytes, base=0x60_000_000)
    tasks: List[TraceTask] = []

    def emit(func, flops, reads, writes):
        params = [Param(space.addr(i, j), tile_bytes, AccessMode.IN) for i, j in reads]
        params += [
            Param(space.addr(i, j), tile_bytes, AccessMode.INOUT) for i, j in writes
        ]
        e, r, w = _times(cfg, flops, len(reads) + len(writes), len(writes), tile_bytes)
        tasks.append(TraceTask(len(tasks), func, tuple(params), e, r, w))

    for k in range(tiles):
        emit(_GETRF, 2.0 * b3 / 3.0, [], [(k, k)])
        for j in range(k + 1, tiles):
            emit(_TRSM_R, b3, [(k, k)], [(k, j)])  # update row panel
        for i in range(k + 1, tiles):
            emit(_TRSM_C, b3, [(k, k)], [(i, k)])  # update column panel
        for i in range(k + 1, tiles):
            for j in range(k + 1, tiles):
                emit(_GEMM, 2.0 * b3, [(i, k), (k, j)], [(i, j)])

    return TaskTrace(
        name or f"blocked-lu-{tiles}x{tiles}",
        tasks,
        meta={
            "pattern": "blocked-lu",
            "tiles": tiles,
            "tile_size": tile_size,
            "task_count": len(tasks),
        },
    )
