"""Gaussian elimination with partial pivoting workload (Fig. 5, Table II).

Task graph for an ``n x n`` matrix, after Veldhorst [16] as used by the
paper:

* For every elimination step ``i`` (column, 1-based, ``i = 1..n-1``):

  - a **pivot task** ``T(i,i)``: searches column ``i`` (rows ``i..n``) for
    the pivot, swaps, scales row ``i``.  Weight ``n + 1 - i`` FLOPs.
    Parameters: ``inout row_i``, ``input row_j`` for ``j = i+1..n``.
  - **update tasks** ``T(j,i)`` for ``j = i+1..n``: eliminate column ``i``
    of row ``j``.  Weight ``n - i`` FLOPs.
    Parameters: ``input row_i``, ``inout row_j``.

* Task count: ``(n^2 + n - 2) / 2`` (Table II: 31374 for n=250, ... ,
  12502499 for n=5000).

This parameterisation reproduces exactly the Fig. 5 phase structure — after
``T(1,1)`` the ``n-1`` updates run in parallel; the next pivot ``T(2,2)``
reads every row the updates wrote, so only one task is ready; and so on —
while also exercising every Nexus++ spill mechanism:

* pivot tasks have up to ``n - i + 1`` parameters  -> **dummy tasks**;
* up to ``n - i`` update tasks wait on ``row_i``    -> **dummy entries**;
* updates *write* rows the previous pivot *read*    -> **WAR hazards** via
  the writer-waits flag.

Task durations follow §V: each worker core sustains 2 GFLOPS, and a task of
weight W reads W floating-point numbers from memory and writes the same
number back (4-byte floats, whole 128-byte chunks).
"""

from __future__ import annotations

from typing import Optional

from ..config import SystemConfig
from .trace import AccessMode, Param, TaskTrace, TraceTask

__all__ = [
    "gaussian_task_count",
    "gaussian_mean_weight",
    "gaussian_trace",
    "TABLE_II_SIZES",
]

#: Matrix sizes in the paper's Table II.
TABLE_II_SIZES = (250, 500, 1000, 3000, 5000)

_PIVOT_FUNC = 0x6E01
_UPDATE_FUNC = 0x6E02
_FLOAT_BYTES = 4


def gaussian_task_count(n: int) -> int:
    """Total task count for an ``n x n`` matrix: ``(n^2 + n - 2) / 2``."""
    if n < 2:
        raise ValueError(f"matrix dimension must be >= 2, got {n}")
    return (n * n + n - 2) // 2


def gaussian_mean_weight(n: int) -> float:
    """Average task weight in FLOPs over the whole task graph.

    Table II quotes 167 / 334 / 667 / 2012 / 3523 FLOPs for
    n = 250 / 500 / 1000 / 3000 / 5000.
    """
    total = 0
    for i in range(1, n):
        total += (n + 1 - i) + (n - i) * (n - i)
    return total / gaussian_task_count(n)


def _row_addr(j: int, n: int) -> int:
    """Base address of matrix row ``j`` (1-based)."""
    row_bytes = n * _FLOAT_BYTES
    return 0x1000000 + (j - 1) * row_bytes


def gaussian_trace(
    n: int,
    config: Optional[SystemConfig] = None,
    name: Optional[str] = None,
) -> TaskTrace:
    """Build the Gaussian-elimination trace for an ``n x n`` matrix.

    ``config`` supplies the core FLOP rate and memory chunk timing used to
    convert weights into durations (defaults to the Table IV machine).
    """
    cfg = config or SystemConfig()
    if n < 2:
        raise ValueError(f"matrix dimension must be >= 2, got {n}")
    row_bytes = n * _FLOAT_BYTES

    def times(weight: int) -> tuple[int, int, int]:
        exec_time = cfg.exec_time_for_flops(weight)
        io_bytes = weight * _FLOAT_BYTES
        return (
            exec_time,
            cfg.memory_time_for_bytes(io_bytes),
            cfg.memory_time_for_bytes(io_bytes),
        )

    tasks: list[TraceTask] = []
    tid = 0
    for i in range(1, n):
        # Pivot task T(i,i): find/swap/scale pivot of column i.
        weight = n + 1 - i
        exec_time, read_time, write_time = times(weight)
        params = [Param(_row_addr(i, n), row_bytes, AccessMode.INOUT)]
        params.extend(
            Param(_row_addr(j, n), row_bytes, AccessMode.IN) for j in range(i + 1, n + 1)
        )
        tasks.append(
            TraceTask(tid, _PIVOT_FUNC, tuple(params), exec_time, read_time, write_time)
        )
        tid += 1
        # Update tasks T(j,i), j = i+1..n.
        weight = n - i
        exec_time, read_time, write_time = times(weight)
        for j in range(i + 1, n + 1):
            tasks.append(
                TraceTask(
                    tid,
                    _UPDATE_FUNC,
                    (
                        Param(_row_addr(i, n), row_bytes, AccessMode.IN),
                        Param(_row_addr(j, n), row_bytes, AccessMode.INOUT),
                    ),
                    exec_time,
                    read_time,
                    write_time,
                )
            )
            tid += 1

    assert tid == gaussian_task_count(n)
    return TaskTrace(
        name or f"gaussian-{n}",
        tasks,
        meta={
            "pattern": "gaussian",
            "n": n,
            "task_count": tid,
            "mean_weight_flops": gaussian_mean_weight(n),
            "core_gflops": cfg.core_gflops,
        },
    )
