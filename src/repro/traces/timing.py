"""Per-task time sampling for synthetic traces.

The paper drives its simulations with a trace from a real parallel H.264
decode on a Cell processor: "On average a task spends 7.5us for accessing
off-chip memory and 11.8us for execution".  The raw trace is not available,
so we sample per-task times from a seeded lognormal calibrated to those
means.  A lognormal matches the long-tailed distribution of macroblock
decode times reported for H.264 workloads; the coefficient of variation is
a parameter so the sensitivity can be benchmarked.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..sim.time_units import US

__all__ = ["TimeModel", "H264_TIME_MODEL"]


@dataclass(frozen=True)
class TimeModel:
    """Samples (exec, read, write) durations in picoseconds.

    ``mean_exec``/``mean_memory`` are in picoseconds.  ``read_fraction``
    splits the memory time between the input-fetch and output-writeback
    phases (H.264 ``decode()`` reads three macroblocks — left, up-right,
    this — and writes one, hence the 3:1 default).  ``cv`` is the
    coefficient of variation of the lognormal; 0 gives constant times.
    """

    mean_exec: int
    mean_memory: int
    read_fraction: float = 0.75
    cv: float = 0.25

    def __post_init__(self) -> None:
        if self.mean_exec < 0 or self.mean_memory < 0:
            raise ValueError("mean durations must be >= 0")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read_fraction must be in [0,1], got {self.read_fraction}")
        if self.cv < 0:
            raise ValueError(f"cv must be >= 0, got {self.cv}")

    def sample(self, n: int, seed: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return integer arrays (exec, read, write), each of length ``n``."""
        rng = np.random.default_rng(seed)
        exec_times = self._lognormal(rng, self.mean_exec, n)
        memory = self._lognormal(rng, self.mean_memory, n)
        read = np.round(memory * self.read_fraction).astype(np.int64)
        write = memory.astype(np.int64) - read
        return exec_times.astype(np.int64), read, write

    def _lognormal(self, rng: np.random.Generator, mean: float, n: int) -> np.ndarray:
        if mean == 0:
            return np.zeros(n)
        if self.cv == 0:
            return np.full(n, round(mean), dtype=np.float64)
        # Parametrize the lognormal so that its arithmetic mean is `mean`
        # and its coefficient of variation is `cv`.
        sigma2 = math.log(1.0 + self.cv**2)
        mu = math.log(mean) - sigma2 / 2.0
        samples = rng.lognormal(mean=mu, sigma=math.sqrt(sigma2), size=n)
        return np.maximum(np.round(samples), 1.0)


#: Calibrated to the published Cell H.264 trace means (11.8 us exec,
#: 7.5 us off-chip memory per task).
H264_TIME_MODEL = TimeModel(
    mean_exec=round(11.8 * US), mean_memory=round(7.5 * US), read_fraction=0.75
)
