"""Workloads: task traces and their generators.

Provides the paper's four benchmark families —

* :func:`h264_wavefront_trace`   (Fig. 4a; Listing 1)
* :func:`horizontal_chains_trace`, :func:`vertical_chains_trace` (Fig. 4b/c)
* :func:`independent_trace`      (maximum-scalability benchmark)
* :func:`gaussian_trace`         (Fig. 5 / Table II)

plus :func:`random_trace` for property-based testing.
"""

from .dense_linalg import blocked_lu_trace, cholesky_task_count, cholesky_trace
from .gaussian import (
    TABLE_II_SIZES,
    gaussian_mean_weight,
    gaussian_task_count,
    gaussian_trace,
)
from .efficiency import spatial_decomposition_trace, wait_chain_trace
from .kernels import jacobi_stencil_trace, pipeline_trace, reduction_tree_trace
from .h264 import FRAME_COLS, FRAME_ROWS, h264_wavefront_trace, wavefront_step
from .random_traces import random_trace
from .synthetic import (
    GRID_COLS,
    GRID_ROWS,
    horizontal_chains_trace,
    independent_trace,
    vertical_chains_trace,
)
from .timing import H264_TIME_MODEL, TimeModel
from .trace import AccessMode, Param, TaskTrace, TraceTask

__all__ = [
    "AccessMode",
    "Param",
    "TraceTask",
    "TaskTrace",
    "TimeModel",
    "H264_TIME_MODEL",
    "h264_wavefront_trace",
    "wavefront_step",
    "FRAME_ROWS",
    "FRAME_COLS",
    "independent_trace",
    "horizontal_chains_trace",
    "vertical_chains_trace",
    "GRID_ROWS",
    "GRID_COLS",
    "gaussian_trace",
    "gaussian_task_count",
    "gaussian_mean_weight",
    "TABLE_II_SIZES",
    "random_trace",
    "cholesky_trace",
    "cholesky_task_count",
    "blocked_lu_trace",
    "jacobi_stencil_trace",
    "reduction_tree_trace",
    "pipeline_trace",
    "wait_chain_trace",
    "spatial_decomposition_trace",
]
