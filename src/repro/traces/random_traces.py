"""Randomized traces for property-based and stress testing.

These never appear in the paper; they exist to differentially test the
hardware Dependence Table against the golden software task graph across the
whole hazard space (RAW / WAR / WAW, shared addresses, wide fan-out,
parameter-count spills).
"""

from __future__ import annotations

import numpy as np

from .trace import AccessMode, Param, TaskTrace, TraceTask

__all__ = ["random_trace"]

_ADDR_BASE = 0x2000000
_SEG_BYTES = 256


def random_trace(
    n_tasks: int,
    n_addresses: int = 16,
    max_params: int = 6,
    seed: int = 0,
    mean_exec: int = 1000,
    mean_memory: int = 500,
    name: str = "random",
) -> TaskTrace:
    """A trace with random parameter lists over a small shared address pool.

    A small pool forces dense RAW/WAR/WAW interactions; ``max_params`` above
    the hardware TD limit exercises dummy tasks.  Deterministic per seed.
    """
    if n_tasks < 1:
        raise ValueError("need at least one task")
    if n_addresses < 1:
        raise ValueError("need at least one address")
    if max_params < 1:
        raise ValueError("need at least one parameter")
    rng = np.random.default_rng(seed)
    tasks = []
    for tid in range(n_tasks):
        k = int(rng.integers(1, max_params + 1))
        k = min(k, n_addresses)
        addr_ids = rng.choice(n_addresses, size=k, replace=False)
        params = []
        for a in addr_ids:
            mode = AccessMode(int(rng.integers(0, 3)))
            params.append(Param(_ADDR_BASE + int(a) * _SEG_BYTES, _SEG_BYTES, mode))
        exec_time = int(rng.integers(1, 2 * mean_exec + 1))
        read_time = int(rng.integers(0, 2 * mean_memory + 1))
        write_time = int(rng.integers(0, 2 * mean_memory + 1))
        tasks.append(
            TraceTask(tid, 0xF00D, tuple(params), exec_time, read_time, write_time)
        )
    return TaskTrace(
        name,
        tasks,
        meta={"pattern": "random", "seed": seed, "n_addresses": n_addresses},
    )
