"""Randomized traces for property-based and stress testing.

These never appear in the paper; they exist to differentially test the
hardware Dependence Table against the golden software task graph across the
whole hazard space (RAW / WAR / WAW, shared addresses, wide fan-out,
parameter-count spills) — and, since the timing-wheel kernel, to stress the
simulator itself with 100k+-task traces.
"""

from __future__ import annotations

import numpy as np

from .trace import AccessMode, Param, TaskTrace, TraceTask

__all__ = ["random_trace"]

_ADDR_BASE = 0x2000000
_SEG_BYTES = 256

#: Tasks per vectorized generation chunk.  Traces up to this size use the
#: original per-task RNG path (bit-identical streams — the pinned golden
#: digests replay traces of <= 3000 tasks); larger traces switch to the
#: chunked vectorized path whose working memory is bounded by
#: ``chunk x n_addresses`` regardless of the trace length.
_CHUNK_TASKS = 8192


def random_trace(
    n_tasks: int,
    n_addresses: int = 16,
    max_params: int = 6,
    seed: int = 0,
    mean_exec: int = 1000,
    mean_memory: int = 500,
    name: str = "random",
) -> TaskTrace:
    """A trace with random parameter lists over a small shared address pool.

    A small pool forces dense RAW/WAR/WAW interactions; ``max_params`` above
    the hardware TD limit exercises dummy tasks.  Deterministic per seed.

    Traces larger than ~8k tasks are built by the streaming chunked
    generator (vectorized draws, bounded working memory), which produces a
    different — equally deterministic — stream for the same seed; the
    small-trace path is byte-identical to the original generator so pinned
    golden schedules stay valid.
    """
    if n_tasks < 1:
        raise ValueError("need at least one task")
    if n_addresses < 1:
        raise ValueError("need at least one address")
    if max_params < 1:
        raise ValueError("need at least one parameter")
    rng = np.random.default_rng(seed)
    if n_tasks <= _CHUNK_TASKS:
        tasks = _legacy_tasks(rng, n_tasks, n_addresses, max_params,
                              mean_exec, mean_memory)
    else:
        tasks = []
        for start in range(0, n_tasks, _CHUNK_TASKS):
            m = min(_CHUNK_TASKS, n_tasks - start)
            _chunk_tasks(tasks, rng, start, m, n_addresses, max_params,
                         mean_exec, mean_memory)
    return TaskTrace(
        name,
        tasks,
        meta={"pattern": "random", "seed": seed, "n_addresses": n_addresses},
    )


def _legacy_tasks(rng, n_tasks, n_addresses, max_params, mean_exec,
                  mean_memory) -> list[TraceTask]:
    """The original per-task generator (RNG stream pinned by goldens)."""
    tasks = []
    for tid in range(n_tasks):
        k = int(rng.integers(1, max_params + 1))
        k = min(k, n_addresses)
        addr_ids = rng.choice(n_addresses, size=k, replace=False)
        params = []
        for a in addr_ids:
            mode = AccessMode(int(rng.integers(0, 3)))
            params.append(Param(_ADDR_BASE + int(a) * _SEG_BYTES, _SEG_BYTES, mode))
        exec_time = int(rng.integers(1, 2 * mean_exec + 1))
        read_time = int(rng.integers(0, 2 * mean_memory + 1))
        write_time = int(rng.integers(0, 2 * mean_memory + 1))
        tasks.append(
            TraceTask(tid, 0xF00D, tuple(params), exec_time, read_time, write_time)
        )
    return tasks


def _chunk_tasks(tasks, rng, start, m, n_addresses, max_params, mean_exec,
                 mean_memory) -> None:
    """Append ``m`` tasks built from whole-chunk vectorized draws.

    All randomness for the chunk is drawn in five array operations; the
    remaining Python loop only assembles the (immutable) descriptor
    objects.  Sampling without replacement is the argsort-of-random-keys
    trick: each row's address ids are the indices of its ``k`` smallest
    keys, uniform over all k-subsets.
    """
    max_k = min(max_params, n_addresses)
    ks = rng.integers(1, max_params + 1, size=m)
    np.minimum(ks, n_addresses, out=ks)
    # (m, n_addresses) random keys; argpartition pulls each row's k
    # smallest in O(n_addresses) — this matrix bounds the generator's
    # working memory, independent of the total trace length.
    keys = rng.random((m, n_addresses))
    addr_rows = np.argpartition(keys, max_k - 1, axis=1)[:, :max_k]
    modes = rng.integers(0, 3, size=(m, max_k))
    exec_times = rng.integers(1, 2 * mean_exec + 1, size=m)
    read_times = rng.integers(0, 2 * mean_memory + 1, size=m)
    write_times = rng.integers(0, 2 * mean_memory + 1, size=m)

    addr_rows = (_ADDR_BASE + addr_rows * _SEG_BYTES).tolist()
    modes = modes.tolist()
    ks = ks.tolist()
    exec_times = exec_times.tolist()
    read_times = read_times.tolist()
    write_times = write_times.tolist()
    append = tasks.append
    in_, out, inout = AccessMode.IN, AccessMode.OUT, AccessMode.INOUT
    mode_of = (in_, out, inout)
    for i in range(m):
        k = ks[i]
        addrs = addr_rows[i]
        mrow = modes[i]
        params = tuple(
            Param(addrs[j], _SEG_BYTES, mode_of[mrow[j]]) for j in range(k)
        )
        append(
            TraceTask(start + i, 0xF00D, params, exec_times[i],
                      read_times[i], write_times[i])
        )
