"""Task traces: the workload format consumed by the Task Machine.

The paper's evaluation is trace-driven: each task carries its input/output
parameter list (base address, size, access mode — the same triple a StarSs
``#pragma css task input(...) inout(...)`` produces) plus the time it spends
executing and reading/writing its operands from/to off-chip memory.
"""

from __future__ import annotations


import json
from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Iterable, Iterator, Optional

import numpy as np

__all__ = ["AccessMode", "Param", "TraceTask", "TaskTrace"]


class AccessMode(IntEnum):
    """StarSs parameter direction."""

    IN = 0
    OUT = 1
    INOUT = 2

    @property
    def reads(self) -> bool:
        return self in (AccessMode.IN, AccessMode.INOUT)

    @property
    def writes(self) -> bool:
        return self in (AccessMode.OUT, AccessMode.INOUT)

    @classmethod
    def parse(cls, text: str) -> "AccessMode":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown access mode {text!r}") from None


@dataclass(frozen=True)
class Param:
    """One task parameter: ``(base memory address, size, access mode)``.

    Dependencies are decided by comparing base addresses only, exactly as in
    the paper ("dependencies between tasks are decided by comparing the base
    addresses of the inputs/outputs").
    """

    addr: int
    size: int
    mode: AccessMode

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise ValueError(f"negative address {self.addr:#x}")
        if self.size <= 0:
            raise ValueError(f"parameter size must be positive, got {self.size}")

    def __str__(self) -> str:
        return f"{self.addr:#x}/{self.size}/{self.mode.name.lower()}"


@dataclass(frozen=True)
class TraceTask:
    """A task instance in serial program order.

    ``exec_time``/``read_time``/``write_time`` are uncontended durations in
    picoseconds; the machine model adds queueing/contention on top.
    """

    tid: int
    func: int
    params: tuple[Param, ...]
    exec_time: int
    read_time: int = 0
    write_time: int = 0

    def __post_init__(self) -> None:
        if self.tid < 0:
            raise ValueError(f"negative task id {self.tid}")
        if not self.params:
            raise ValueError(f"task {self.tid}: needs at least one parameter")
        if self.exec_time < 0 or self.read_time < 0 or self.write_time < 0:
            raise ValueError(f"task {self.tid}: negative duration")

    @property
    def n_params(self) -> int:
        return len(self.params)

    @property
    def memory_time(self) -> int:
        """Total uncontended off-chip time (read + write phases)."""
        return self.read_time + self.write_time

    def reads(self) -> Iterator[Param]:
        return (p for p in self.params if p.mode.reads)

    def writes(self) -> Iterator[Param]:
        return (p for p in self.params if p.mode.writes)


class TaskTrace:
    """An ordered collection of tasks plus provenance metadata.

    Iteration order is serial program order — the order the master core
    generates and submits Task Descriptors.
    """

    def __init__(self, name: str, tasks: Iterable[TraceTask], meta: Optional[dict] = None):
        self.name = name
        self.tasks: list[TraceTask] = list(tasks)
        self.meta: dict[str, Any] = dict(meta or {})
        self._validate()

    def _validate(self) -> None:
        if not self.tasks:
            raise ValueError(f"trace {self.name!r} is empty")
        for i, task in enumerate(self.tasks):
            if task.tid != i:
                raise ValueError(
                    f"trace {self.name!r}: task #{i} has tid {task.tid}; "
                    "tids must equal serial position"
                )

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[TraceTask]:
        return iter(self.tasks)

    def __getitem__(self, tid: int) -> TraceTask:
        return self.tasks[tid]

    # ---- summary statistics ---------------------------------------------------

    @property
    def total_exec_time(self) -> int:
        return sum(t.exec_time for t in self.tasks)

    @property
    def total_memory_time(self) -> int:
        return sum(t.memory_time for t in self.tasks)

    @property
    def mean_exec_time(self) -> float:
        return self.total_exec_time / len(self.tasks)

    @property
    def mean_memory_time(self) -> float:
        return self.total_memory_time / len(self.tasks)

    @property
    def max_params(self) -> int:
        return max(t.n_params for t in self.tasks)

    def address_set(self) -> set[int]:
        return {p.addr for t in self.tasks for p in t.params}

    def describe(self) -> str:
        return (
            f"trace {self.name!r}: {len(self.tasks)} tasks, "
            f"mean exec {self.mean_exec_time / 1e6:.3g}us, "
            f"mean mem {self.mean_memory_time / 1e6:.3g}us, "
            f"max params {self.max_params}, "
            f"{len(self.address_set())} distinct addresses"
        )

    # ---- serialization -----------------------------------------------------------

    def save(self, path: str) -> None:
        """Persist to a compact ``.npz`` file (variable-length params flattened)."""
        n = len(self.tasks)
        counts = np.fromiter((t.n_params for t in self.tasks), dtype=np.int64, count=n)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        addr = np.zeros(total, dtype=np.uint64)
        size = np.zeros(total, dtype=np.int64)
        mode = np.zeros(total, dtype=np.int8)
        pos = 0
        for t in self.tasks:
            for p in t.params:
                addr[pos] = p.addr
                size[pos] = p.size
                mode[pos] = int(p.mode)
                pos += 1
        np.savez_compressed(
            path,
            name=np.array(self.name),
            meta=np.array(json.dumps(self.meta)),
            func=np.fromiter((t.func for t in self.tasks), dtype=np.int64, count=n),
            exec_time=np.fromiter((t.exec_time for t in self.tasks), dtype=np.int64, count=n),
            read_time=np.fromiter((t.read_time for t in self.tasks), dtype=np.int64, count=n),
            write_time=np.fromiter((t.write_time for t in self.tasks), dtype=np.int64, count=n),
            param_offsets=offsets,
            param_addr=addr,
            param_size=size,
            param_mode=mode,
        )

    @classmethod
    def load(cls, path: str) -> "TaskTrace":
        """Load a trace produced by :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            name = str(data["name"])
            meta = json.loads(str(data["meta"]))
            offsets = data["param_offsets"]
            addr = data["param_addr"]
            size = data["param_size"]
            mode = data["param_mode"]
            tasks = []
            for tid in range(len(data["func"])):
                lo, hi = int(offsets[tid]), int(offsets[tid + 1])
                params = tuple(
                    Param(int(addr[k]), int(size[k]), AccessMode(int(mode[k])))
                    for k in range(lo, hi)
                )
                tasks.append(
                    TraceTask(
                        tid=tid,
                        func=int(data["func"][tid]),
                        params=params,
                        exec_time=int(data["exec_time"][tid]),
                        read_time=int(data["read_time"][tid]),
                        write_time=int(data["write_time"][tid]),
                    )
                )
        return cls(name, tasks, meta)
