"""Additional task-graph kernels (extension beyond the paper).

Structured patterns common in StarSs applications, used by the extension
benches and the versatility tests:

* :func:`jacobi_stencil_trace` — iterative 2D 5-point stencil with
  double-buffered grids: wide fan-in per task, iteration barriers emerge
  purely from data flow.
* :func:`reduction_tree_trace` — binary combining tree: log-depth graph
  whose parallelism *halves* every level (the mirror image of Gaussian
  elimination's widening fan-out).
* :func:`pipeline_trace` — S-stage streaming pipeline over N items:
  constant parallelism S with a wavefront fill/drain, the pattern of
  video/DSP pipelines.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import SystemConfig
from .timing import TimeModel
from .trace import AccessMode, Param, TaskTrace, TraceTask

__all__ = ["jacobi_stencil_trace", "reduction_tree_trace", "pipeline_trace"]

_JACOBI, _REDUCE, _STAGE = 0xD001, 0xD002, 0xD003


def jacobi_stencil_trace(
    grid: int,
    iterations: int,
    block_bytes: int = 4096,
    exec_time: int = 2_000_000,
    config: Optional[SystemConfig] = None,
    name: Optional[str] = None,
) -> TaskTrace:
    """5-point Jacobi over a ``grid x grid`` block array, double buffered.

    Iteration t reads blocks of buffer ``t % 2`` (self + 4 neighbours) and
    writes buffer ``(t+1) % 2`` — so consecutive iterations interleave as
    a software-pipelined wavefront instead of a global barrier.
    """
    if grid < 1 or iterations < 1:
        raise ValueError("grid and iterations must be >= 1")
    cfg = config or SystemConfig()

    def addr(buf: int, i: int, j: int) -> int:
        return 0x70_000_000 + ((buf * grid + i) * grid + j) * block_bytes

    read_time = cfg.memory_time_for_bytes(5 * block_bytes)
    write_time = cfg.memory_time_for_bytes(block_bytes)
    tasks: List[TraceTask] = []
    for t in range(iterations):
        src, dst = t % 2, (t + 1) % 2
        for i in range(grid):
            for j in range(grid):
                params = [Param(addr(src, i, j), block_bytes, AccessMode.IN)]
                for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                    ni, nj = i + di, j + dj
                    if 0 <= ni < grid and 0 <= nj < grid:
                        params.append(
                            Param(addr(src, ni, nj), block_bytes, AccessMode.IN)
                        )
                params.append(Param(addr(dst, i, j), block_bytes, AccessMode.OUT))
                tasks.append(
                    TraceTask(
                        len(tasks), _JACOBI, tuple(params), exec_time, read_time, write_time
                    )
                )
    return TaskTrace(
        name or f"jacobi-{grid}x{grid}x{iterations}",
        tasks,
        meta={"pattern": "jacobi", "grid": grid, "iterations": iterations},
    )


def reduction_tree_trace(
    leaves: int,
    chunk_bytes: int = 8192,
    exec_time: int = 3_000_000,
    config: Optional[SystemConfig] = None,
    name: Optional[str] = None,
) -> TaskTrace:
    """Binary combining tree over ``leaves`` input chunks (power of two)."""
    if leaves < 2 or leaves & (leaves - 1):
        raise ValueError("leaves must be a power of two >= 2")
    cfg = config or SystemConfig()

    def addr(level: int, index: int) -> int:
        return 0x78_000_000 + (level * leaves + index) * chunk_bytes

    read_time = cfg.memory_time_for_bytes(2 * chunk_bytes)
    write_time = cfg.memory_time_for_bytes(chunk_bytes)
    tasks: List[TraceTask] = []
    level, width = 0, leaves
    while width > 1:
        for k in range(width // 2):
            params = (
                Param(addr(level, 2 * k), chunk_bytes, AccessMode.IN),
                Param(addr(level, 2 * k + 1), chunk_bytes, AccessMode.IN),
                Param(addr(level + 1, k), chunk_bytes, AccessMode.OUT),
            )
            tasks.append(
                TraceTask(len(tasks), _REDUCE, params, exec_time, read_time, write_time)
            )
        level += 1
        width //= 2
    return TaskTrace(
        name or f"reduction-{leaves}",
        tasks,
        meta={"pattern": "reduction", "leaves": leaves, "levels": level},
    )


def pipeline_trace(
    items: int,
    stages: int,
    item_bytes: int = 16384,
    time_model: Optional[TimeModel] = None,
    seed: int = 7,
    config: Optional[SystemConfig] = None,
    name: Optional[str] = None,
) -> TaskTrace:
    """S-stage streaming pipeline: stage s of item n reads stage s-1's
    output for item n and writes its own buffer (which the next item's
    same stage overwrites -> WAW unless renamed, making this the showcase
    workload for :func:`repro.runtime.renaming.rename_trace`)."""
    if items < 1 or stages < 1:
        raise ValueError("items and stages must be >= 1")
    cfg = config or SystemConfig()
    model = time_model or TimeModel(mean_exec=4_000_000, mean_memory=1_000_000, cv=0.2)
    exec_t, read_t, write_t = model.sample(items * stages, seed)

    def stage_buffer(s: int) -> int:
        return 0x7C_000_000 + s * item_bytes

    def item_buffer(n: int, s: int) -> int:
        return 0x7D_000_000 + (n * stages + s) * item_bytes

    tasks: List[TraceTask] = []
    for n in range(items):
        for s in range(stages):
            params = []
            if s > 0:
                params.append(Param(item_buffer(n, s - 1), item_bytes, AccessMode.IN))
            # Each stage overwrites private scratch per item: a *false*
            # WAW chain across items (the renaming ablation target; an
            # inout here would be a true carried dependency instead).
            params.append(Param(stage_buffer(s), item_bytes, AccessMode.OUT))
            params.append(Param(item_buffer(n, s), item_bytes, AccessMode.OUT))
            tid = len(tasks)
            tasks.append(
                TraceTask(
                    tid,
                    _STAGE,
                    tuple(params),
                    int(exec_t[tid]),
                    int(read_t[tid]),
                    int(write_t[tid]),
                )
            )
    return TaskTrace(
        name or f"pipeline-{items}x{stages}",
        tasks,
        meta={"pattern": "pipeline", "items": items, "stages": stages},
    )
