"""Granularity-probe workloads: wait-chains and spatial decomposition.

The paper's value proposition is an efficiency-vs-granularity curve:
hardware dependency resolution keeps *fine-grained* tasks profitable where
a software runtime's per-task overhead collapses the speedup.  These two
generators state that claim directly:

* :func:`wait_chain_trace` — the canonical TaskTorrent-style overhead
  probe: ``rows`` parallel chains of ``cols`` tasks, each task spinning
  for ``spin_ns`` and depending on ``k_deps`` tasks of the previous
  column.  Sweeping ``spin_ns`` sweeps task granularity while the graph
  shape (and hence the per-task management work) stays fixed.
* :func:`spatial_decomposition_trace` — the molecular-dynamics halo
  exchange (arXiv:1401.4441): a ``grid**dims`` cell array stepped in
  time, every cell reading its full Moore neighbourhood from the previous
  step's buffer (double buffered, like the Jacobi kernel but with corner
  neighbours and an optional third dimension).
"""

from __future__ import annotations

import itertools
from typing import List, Optional

import numpy as np

from ..config import SystemConfig
from .trace import AccessMode, Param, TaskTrace, TraceTask

__all__ = ["wait_chain_trace", "spatial_decomposition_trace"]

_WAIT, _CELL = 0xE001, 0xE002

_NS = 1_000  # picoseconds per nanosecond

_WAIT_CHAIN_BASE = 0x80_000_000
_SPATIAL_BASE = 0x84_000_000


def wait_chain_trace(
    rows: int,
    cols: int,
    k_deps: int = 1,
    spin_ns: int = 1_000,
    cv: float = 0.0,
    seed: int = 11,
    block_bytes: int = 64,
    name: Optional[str] = None,
) -> TaskTrace:
    """``rows`` wait-chains of ``cols`` tasks with ``k_deps`` cross links.

    Task ``(r, c)`` spins for ``spin_ns`` nanoseconds, writes its own cell
    buffer, and (for ``c > 0``) reads the cells written by tasks
    ``((r + d) % rows, c - 1)`` for ``d in range(k_deps)`` — so every task
    has exactly ``min(k_deps, rows)`` true dependences on the previous
    column and the steady-state parallelism is ``rows``.  Tasks are
    emitted column-major, hence every dependence points at an earlier tid.

    ``cv > 0`` adds lognormal jitter around the spin time (seeded, so the
    trace stays deterministic per ``seed``).  Memory time is zero: the
    workload is a pure task-management overhead probe.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    if k_deps < 1:
        raise ValueError("k_deps must be >= 1")
    if spin_ns < 1:
        raise ValueError("spin_ns must be >= 1")
    k = min(k_deps, rows)
    n = rows * cols
    spin_ps = spin_ns * _NS
    if cv > 0:
        sigma = float(np.sqrt(np.log1p(cv * cv)))
        mu = float(np.log(spin_ps)) - sigma * sigma / 2
        rng = np.random.default_rng(seed)
        exec_times = np.maximum(1, rng.lognormal(mu, sigma, n).astype(np.int64))
    else:
        exec_times = np.full(n, spin_ps, dtype=np.int64)

    def addr(r: int, c: int) -> int:
        return _WAIT_CHAIN_BASE + (c * rows + r) * block_bytes

    tasks: List[TraceTask] = []
    for c in range(cols):
        for r in range(rows):
            params = [
                Param(addr((r + d) % rows, c - 1), block_bytes, AccessMode.IN)
                for d in range(k)
                if c > 0
            ]
            params.append(Param(addr(r, c), block_bytes, AccessMode.OUT))
            tid = len(tasks)
            tasks.append(TraceTask(tid, _WAIT, tuple(params), int(exec_times[tid])))
    return TaskTrace(
        name or f"wait-chain-{rows}x{cols}-k{k}-{spin_ns}ns",
        tasks,
        meta={
            "pattern": "wait-chain",
            "rows": rows,
            "cols": cols,
            "k_deps": k,
            "spin_ns": spin_ns,
            "cv": cv,
            "seed": seed,
        },
    )


def spatial_decomposition_trace(
    grid: int,
    steps: int,
    dims: int = 2,
    block_bytes: int = 2048,
    exec_time: int = 2_000_000,
    config: Optional[SystemConfig] = None,
    name: Optional[str] = None,
) -> TaskTrace:
    """Halo-exchange over a ``grid**dims`` cell array, double buffered.

    Step ``t`` reads every cell's own block plus its full Moore
    neighbourhood (up to ``3**dims - 1`` neighbours, clamped at the
    boundary) from buffer ``t % 2`` and writes buffer ``(t+1) % 2`` — the
    per-timestep force/update pattern of a molecular-dynamics spatial
    decomposition.  Interior 3D cells carry 28 parameters, well past the
    hardware's per-descriptor limit, so this workload also exercises the
    dummy-task parameter spill path.
    """
    if dims not in (2, 3):
        raise ValueError("dims must be 2 or 3")
    if grid < 1 or steps < 1:
        raise ValueError("grid and steps must be >= 1")
    cfg = config or SystemConfig()
    cells = grid**dims
    offsets = [
        off
        for off in itertools.product((-1, 0, 1), repeat=dims)
        if any(off)
    ]

    def flat(coord: tuple) -> int:
        idx = 0
        for x in coord:
            idx = idx * grid + x
        return idx

    def addr(buf: int, idx: int) -> int:
        return _SPATIAL_BASE + (buf * cells + idx) * block_bytes

    write_time = cfg.memory_time_for_bytes(block_bytes)
    tasks: List[TraceTask] = []
    for t in range(steps):
        src, dst = t % 2, (t + 1) % 2
        for coord in itertools.product(range(grid), repeat=dims):
            params = [Param(addr(src, flat(coord)), block_bytes, AccessMode.IN)]
            for off in offsets:
                ncoord = tuple(x + o for x, o in zip(coord, off))
                if all(0 <= x < grid for x in ncoord):
                    params.append(
                        Param(addr(src, flat(ncoord)), block_bytes, AccessMode.IN)
                    )
            read_time = cfg.memory_time_for_bytes(len(params) * block_bytes)
            params.append(Param(addr(dst, flat(coord)), block_bytes, AccessMode.OUT))
            tasks.append(
                TraceTask(
                    len(tasks),
                    _CELL,
                    tuple(params),
                    exec_time,
                    read_time,
                    write_time,
                )
            )
    return TaskTrace(
        name or f"spatial-{dims}d-{grid}^{dims}x{steps}",
        tasks,
        meta={"pattern": "spatial", "grid": grid, "steps": steps, "dims": dims},
    )
