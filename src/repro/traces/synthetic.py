"""Synthetic dependency patterns derived from the H.264 benchmark.

The paper evaluates, besides the wavefront (Fig. 4a), three synthetic
workloads using the same per-task execution/memory times:

* **independent** — no dependencies at all; measures the maximum scalability
  of Nexus++ itself (the 54x / 143x / 221x headline numbers).
* **horizontal** (Fig. 4b) — chains run *along* the generation order: each
  task depends on its left neighbour in a 68-row x 120-column grid.  The
  first task of the next row is 120 positions away in program order, so the
  number of rows resident in the 1K-entry Task Pool (~8) caps parallelism —
  the paper's "at most 8 cores" observation.
* **vertical** (Fig. 4c) — chains run *across* the generation order: each
  task depends on the task directly above it, so every row of 120 tasks is
  fully parallel and the pattern scales well to 64 cores.

Fig. 4 draws the grid 120 wide by 68 tall; the horizontal/vertical patterns
use that orientation (chains of length 120 / width 120) while the wavefront
follows Listing 1's 120x68 loop nest.  Both contain 8160 tasks.
"""

from __future__ import annotations

from typing import Optional

from .timing import H264_TIME_MODEL, TimeModel
from .trace import AccessMode, Param, TaskTrace, TraceTask

__all__ = [
    "independent_trace",
    "horizontal_chains_trace",
    "vertical_chains_trace",
    "GRID_ROWS",
    "GRID_COLS",
]

#: Fig. 4(b)/(c) grid orientation: 68 rows of 120 blocks.
GRID_ROWS = 68
GRID_COLS = 120

_BLOCK_BYTES = 16 * 16 * 4
_FUNC = 0xBEEF


def _addr(row: int, col: int, cols: int) -> int:
    return 0x4000000 + (row * cols + col) * _BLOCK_BYTES


def independent_trace(
    n_tasks: int = GRID_ROWS * GRID_COLS,
    n_params: int = 3,
    time_model: Optional[TimeModel] = None,
    seed: int = 2012,
    name: str = "independent",
) -> TaskTrace:
    """Tasks with disjoint parameter addresses: zero dependencies.

    Each task gets ``n_params`` parameters at unique addresses, first one
    ``inout``, rest ``in``.  The default of 3 matches the H.264 decode
    tasks this benchmark is derived from (left, up-right, this) and keeps
    the address working set of a full 1K-task window (3K addresses) inside
    the 4K-entry Dependence Table, as the paper's headline runs require.
    """
    if n_tasks < 1:
        raise ValueError("need at least one task")
    if n_params < 1:
        raise ValueError("need at least one parameter per task")
    model = time_model or H264_TIME_MODEL
    exec_t, read_t, write_t = model.sample(n_tasks, seed)
    tasks = []
    for tid in range(n_tasks):
        base = 0x8000000 + tid * n_params * _BLOCK_BYTES
        params = tuple(
            Param(
                base + k * _BLOCK_BYTES,
                _BLOCK_BYTES,
                AccessMode.INOUT if k == 0 else AccessMode.IN,
            )
            for k in range(n_params)
        )
        tasks.append(
            TraceTask(
                tid=tid,
                func=_FUNC,
                params=params,
                exec_time=int(exec_t[tid]),
                read_time=int(read_t[tid]),
                write_time=int(write_t[tid]),
            )
        )
    return TaskTrace(
        name,
        tasks,
        meta={"pattern": "independent", "n_tasks": n_tasks, "seed": seed},
    )


def _grid_trace(
    rows: int,
    cols: int,
    pattern: str,
    time_model: Optional[TimeModel],
    seed: int,
    name: str,
) -> TaskTrace:
    if rows < 1 or cols < 1:
        raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
    model = time_model or H264_TIME_MODEL
    n = rows * cols
    exec_t, read_t, write_t = model.sample(n, seed)
    tasks = []
    tid = 0
    for i in range(rows):
        for j in range(cols):
            params = []
            if pattern == "horizontal" and j > 0:
                params.append(Param(_addr(i, j - 1, cols), _BLOCK_BYTES, AccessMode.IN))
            elif pattern == "vertical" and i > 0:
                params.append(Param(_addr(i - 1, j, cols), _BLOCK_BYTES, AccessMode.IN))
            params.append(Param(_addr(i, j, cols), _BLOCK_BYTES, AccessMode.INOUT))
            tasks.append(
                TraceTask(
                    tid=tid,
                    func=_FUNC,
                    params=tuple(params),
                    exec_time=int(exec_t[tid]),
                    read_time=int(read_t[tid]),
                    write_time=int(write_t[tid]),
                )
            )
            tid += 1
    return TaskTrace(
        name,
        tasks,
        meta={"pattern": pattern, "rows": rows, "cols": cols, "seed": seed},
    )


def horizontal_chains_trace(
    rows: int = GRID_ROWS,
    cols: int = GRID_COLS,
    time_model: Optional[TimeModel] = None,
    seed: int = 2012,
) -> TaskTrace:
    """Fig. 4(b): dependency chains parallel to the generation order."""
    return _grid_trace(rows, cols, "horizontal", time_model, seed, "horizontal-chains")


def vertical_chains_trace(
    rows: int = GRID_ROWS,
    cols: int = GRID_COLS,
    time_model: Optional[TimeModel] = None,
    seed: int = 2012,
) -> TaskTrace:
    """Fig. 4(c): dependency chains perpendicular to the generation order."""
    return _grid_trace(rows, cols, "vertical", time_model, seed, "vertical-chains")
