"""Trace linting: find workloads the base-address comparison would break.

The paper (§III-B): "Currently, dependencies between tasks are decided by
comparing the base addresses of the inputs/outputs of the different
tasks."  That rule silently misses a dependence when two parameters
*overlap* without sharing a base address (e.g. a task writing a whole row
while another reads a cell inside it).  Real StarSs programs must be
written block-wise for exactly this reason.

:func:`lint_trace` reports, per trace:

* **aliasing**: parameter ranges that overlap but have different bases —
  dependencies the hardware will not see (an error for trustworthy runs);
* **duplicate addresses** within one task (the machine rejects these);
* **degenerate timing** (zero-cost tasks distort speedup measurements);
* structural statistics useful when porting a new workload.

It is what the CLI's ``validate`` command and the trace generators' test
suite run; every builtin generator must lint clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .trace import TaskTrace

__all__ = ["LintReport", "lint_trace", "find_aliasing"]


@dataclass
class LintReport:
    """Outcome of linting one trace."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        if self.ok and not self.warnings:
            return "lint: clean"
        parts = []
        if self.errors:
            parts.append(f"{len(self.errors)} error(s)")
        if self.warnings:
            parts.append(f"{len(self.warnings)} warning(s)")
        return "lint: " + ", ".join(parts)


def find_aliasing(trace: TaskTrace, limit: int = 20) -> List[str]:
    """Overlapping parameter ranges with distinct base addresses.

    Returns up to ``limit`` human-readable findings.  Complexity is
    O(S log S) in the number of distinct segments via interval sweeping.
    """
    # Collect distinct (base, size) segments with one exemplar task each.
    segments = {}
    for task in trace:
        for p in task.params:
            if p.addr not in segments or p.size > segments[p.addr][0]:
                segments[p.addr] = (p.size, task.tid)
    intervals = sorted(
        (addr, addr + size, tid) for addr, (size, tid) in segments.items()
    )
    findings: List[str] = []
    prev_start, prev_end, prev_tid = None, None, None
    for start, end, tid in intervals:
        if prev_end is not None and start < prev_end:
            findings.append(
                f"segments {prev_start:#x}(+{prev_end - prev_start}) and "
                f"{start:#x}(+{end - start}) overlap (tasks {prev_tid}, {tid}); "
                "base-address comparison will miss this dependence"
            )
            if len(findings) >= limit:
                break
        if prev_end is None or end > prev_end:
            prev_start, prev_end, prev_tid = start, end, tid
    return findings


def lint_trace(trace: TaskTrace) -> LintReport:
    """Run every lint over the trace."""
    report = LintReport()
    report.errors.extend(find_aliasing(trace))
    for task in trace:
        addrs = [p.addr for p in task.params]
        if len(set(addrs)) != len(addrs):
            report.errors.append(
                f"task {task.tid} lists a base address twice (machine rejects this)"
            )
    zero_cost = sum(
        1 for t in trace if t.exec_time == 0 and t.read_time == 0 and t.write_time == 0
    )
    if zero_cost:
        report.warnings.append(
            f"{zero_cost} task(s) have zero total cost; speedups will be "
            "dominated by task-management overheads"
        )
    widest = trace.max_params
    if widest > 64:
        report.warnings.append(
            f"widest task has {widest} parameters; submission takes "
            f"~{(5 + 2 * (widest + 1)) * 2} ns and may dominate the master"
        )
    return report
