"""H.264 macroblock wavefront workload (Fig. 4a, Listing 1).

Listing 1 of the paper decodes a 1920x1088 frame in 16x16 macroblocks:
``X[120][68]``, i.e. 120 rows of 68 macroblocks, generated row-major.  Each
``decode(left, upright, this)`` call becomes a task with

* ``input``  X[i][j-1]   (left neighbour, same row)
* ``input``  X[i-1][j+1] (up-right neighbour, previous row)
* ``inout``  X[i][j]     (the decoded block itself)

which yields the classic 2:1 wavefront: a task at (i, j) can start at
wavefront step ``2*i + j``, so available parallelism ramps up to roughly
``cols/2`` and back down — the "ramping effect" the paper highlights.
"""

from __future__ import annotations

from typing import Optional

from .timing import H264_TIME_MODEL, TimeModel
from .trace import AccessMode, Param, TaskTrace, TraceTask

__all__ = ["h264_wavefront_trace", "wavefront_step", "FRAME_ROWS", "FRAME_COLS"]

#: Full-HD frame geometry from Listing 1 (1920x1088 in 16x16 macroblocks).
FRAME_ROWS = 120
FRAME_COLS = 68

#: Macroblock payload: 16x16 pixels, 1.5 bytes/pixel (YUV420) rounded up to
#: the paper's 128 B memory chunks; only used for Param.size bookkeeping.
_MB_BYTES = 16 * 16 * 4

#: Function-pointer id used for decode() tasks (arbitrary but stable).
DECODE_FUNC = 0xABCD


def _mb_addr(row: int, col: int, cols: int) -> int:
    """Base address of macroblock (row, col); 0x10000 keeps addresses apart
    from other synthetic workloads in mixed traces."""
    return 0x10000 + (row * cols + col) * _MB_BYTES


def wavefront_step(row: int, col: int) -> int:
    """Earliest dataflow step at which block (row, col) can decode."""
    return 2 * row + col


def h264_wavefront_trace(
    rows: int = FRAME_ROWS,
    cols: int = FRAME_COLS,
    time_model: Optional[TimeModel] = None,
    seed: int = 2012,
    name: str = "h264-wavefront",
) -> TaskTrace:
    """Build the Fig. 4(a) wavefront trace (default 120x68 = 8160 tasks)."""
    if rows < 1 or cols < 1:
        raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
    model = time_model or H264_TIME_MODEL
    n = rows * cols
    exec_t, read_t, write_t = model.sample(n, seed)

    tasks = []
    tid = 0
    for i in range(rows):
        for j in range(cols):
            params = []
            if j > 0:
                params.append(Param(_mb_addr(i, j - 1, cols), _MB_BYTES, AccessMode.IN))
            if i > 0 and j < cols - 1:
                params.append(Param(_mb_addr(i - 1, j + 1, cols), _MB_BYTES, AccessMode.IN))
            params.append(Param(_mb_addr(i, j, cols), _MB_BYTES, AccessMode.INOUT))
            tasks.append(
                TraceTask(
                    tid=tid,
                    func=DECODE_FUNC,
                    params=tuple(params),
                    exec_time=int(exec_t[tid]),
                    read_time=int(read_t[tid]),
                    write_time=int(write_t[tid]),
                )
            )
            tid += 1
    return TaskTrace(
        name,
        tasks,
        meta={
            "pattern": "wavefront",
            "rows": rows,
            "cols": cols,
            "seed": seed,
            "mean_exec_ps": model.mean_exec,
            "mean_memory_ps": model.mean_memory,
        },
    )
