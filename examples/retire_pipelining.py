"""Pipelined retirement: sweep the retire depth, attribute the bottleneck.

PR 2 left the 4-master/4-shard machine retire-bound: every shard's retire
front-end keeps one finish in flight, serializing param read, finish
scatter, reply gather and chain free per task (~31 us on the hazard-dense
workload).  This example sweeps ``retire_pipeline_depth`` on that machine
and prints, for each depth, where the bottleneck moved — the depth-1 run
is *retire*-bound, the pipelined runs return to the master/application
floor.

Run with::

    PYTHONPATH=src python examples/retire_pipelining.py
"""

from repro.analysis import render_table
from repro.config import BUS_MODEL_FITTED, SystemConfig
from repro.machine import analyze_bottleneck, retire_scaling_sweep
from repro.traces import random_trace


def main() -> None:
    trace = random_trace(
        1200,
        n_addresses=96,
        max_params=6,
        seed=7,
        mean_exec=4000,
        mean_memory=0,
        name="random-hazard-dense",
    )
    cfg = SystemConfig(
        workers=16,
        maestro_shards=4,
        master_cores=4,
        submission_batch=8,
        memory_contention=False,
        bus_model=BUS_MODEL_FITTED,
    )
    depths = [1, 2, 4, 8]
    report = retire_scaling_sweep(trace, depths, cfg)

    rows = []
    for row in report.rows():
        run = report.at(row["depth"])
        verdict = analyze_bottleneck(
            run, cfg.with_(retire_pipeline_depth=row["depth"])
        )
        rows.append(
            [
                row["depth"],
                row["task_pool_ports"],
                round(row["makespan_ps"] / 1e6, 2),
                round(row["speedup_vs_baseline"], 2),
                f"{row['retire_full_fraction']:.0%}",
                verdict.verdict,
            ]
        )
    print(
        render_table(
            ["depth", "TP ports", "makespan (us)", "speedup", "pipe full", "bottleneck"],
            rows,
            f"{trace.name}: retire pipeline sweep "
            f"({cfg.workers} workers, {cfg.maestro_shards} shards, "
            f"{cfg.master_cores} masters)",
        )
    )

    # Show the full attribution for the two ends of the curve.
    for depth in (depths[0], depths[-1]):
        run = report.at(depth)
        rep = analyze_bottleneck(run, cfg.with_(retire_pipeline_depth=depth))
        print(f"\ndepth {depth}: {rep.describe()}")
        retire = run.stats["shards"]["retire"]
        print(
            f"  in-flight mean per shard: "
            f"{[round(m, 2) for m in retire['inflight_mean']]}, "
            f"pipe-full per shard: "
            f"{[f'{f:.0%}' for f in retire['full_fraction']]}"
        )


if __name__ == "__main__":
    main()
