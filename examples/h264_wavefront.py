#!/usr/bin/env python3
"""H.264 wavefront decoding, written exactly like the paper's Listing 1.

Shows the full path from annotated source code to hardware simulation:

1. write the wavefront decode loop with ``@prog.task`` pragmas;
2. *execute it functionally* (threaded, dependence-driven) and validate the
   result against a serial reference;
3. lower the recorded program to a task trace and replay it on Nexus++
   machines of increasing size (a miniature of Fig. 7's wavefront series).

Run:  python examples/h264_wavefront.py
"""

import numpy as np

from repro.analysis import plot_speedup_curves, render_table
from repro.config import paper_default
from repro.frontend import StarSsProgram
from repro.machine import speedup_curve
from repro.runtime import DataflowExecutor
from repro.sim import US

ROWS, COLS = 24, 16  # scaled-down frame so the example runs in seconds
MB = 16  # macroblock edge


def build_program() -> tuple[StarSsProgram, list[list[np.ndarray]]]:
    """Listing 1: decode(left, upright, this) over every macroblock."""
    prog = StarSsProgram("h264")
    frame = [[np.zeros((MB, MB)) for _ in range(COLS)] for _ in range(ROWS)]

    @prog.task(inputs=("left", "upright"), inouts=("block",))
    def decode(left, upright, block):
        # A stand-in for real macroblock decoding: the block's value is a
        # deterministic function of its neighbours, so the wavefront order
        # is observable in the data.
        acc = 1.0
        if left is not None:
            acc += left[0, 0]
        if upright is not None:
            acc += upright[0, 0]
        block += acc

    for i in range(ROWS):
        for j in range(COLS):
            decode(
                frame[i][j - 1] if j > 0 else None,
                frame[i - 1][j + 1] if i > 0 and j + 1 < COLS else None,
                frame[i][j],
            )
    prog.barrier()
    return prog, frame


def reference_frame() -> list[list[float]]:
    ref = [[0.0] * COLS for _ in range(ROWS)]
    for i in range(ROWS):
        for j in range(COLS):
            acc = 1.0
            if j > 0:
                acc += ref[i][j - 1]
            if i > 0 and j + 1 < COLS:
                acc += ref[i - 1][j + 1]
            ref[i][j] = acc
    return ref


def main() -> None:
    # --- functional execution -------------------------------------------------
    prog, frame = build_program()
    report = DataflowExecutor(workers=8).execute(prog)
    ref = reference_frame()
    ok = all(
        frame[i][j][0, 0] == ref[i][j] for i in range(ROWS) for j in range(COLS)
    )
    print(f"functional wavefront: {len(prog.tasks)} tasks, "
          f"max concurrency {report.max_concurrency}, "
          f"result {'correct' if ok else 'WRONG'}")
    assert ok and report.ok

    # --- hardware simulation ---------------------------------------------------
    # Give every decode task the paper's published mean times.
    trace = prog.to_trace(exec_time=round(11.8 * US))
    cores = [1, 2, 4, 8, 16, 32]
    curve = speedup_curve(trace, cores, paper_default())
    print()
    print(render_table(
        ["cores", "speedup", "efficiency"],
        [[c, round(s, 2), f"{s / c:.2f}"] for c, s in curve.rows()],
        "wavefront on Nexus++ (scaled-down frame)",
    ))
    print()
    print(plot_speedup_curves({"wavefront": curve.rows()},
                              title="Ramping effect limits wavefront scaling"))
    print(f"\nsaturates around {curve.saturation_point()} cores "
          f"(available parallelism, not Nexus++, is the limit)")


if __name__ == "__main__":
    main()
