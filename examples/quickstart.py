#!/usr/bin/env python3
"""Quickstart: simulate an H.264 frame decode on a Nexus++ multicore.

Builds the paper's wavefront workload (Listing 1 / Fig. 4a), runs it on a
16-worker machine with Table IV parameters, and prints what the hardware
did — all in a few seconds.

Run:  python examples/quickstart.py
"""

from repro import NexusMachine, h264_wavefront_trace, paper_default
from repro.analysis import render_table
from repro.runtime import build_task_graph


def main() -> None:
    # 1. The workload: 120x68 macroblocks, one task per block.
    trace = h264_wavefront_trace()
    print(trace.describe())

    # 2. The machine: Table IV configuration with 16 worker cores.
    config = paper_default(workers=16)
    print()
    print(render_table(["parameter", "value"], config.table_iv(), "Table IV"))

    # 3. Simulate.
    result = NexusMachine(config).run(trace)
    print()
    print(result.summary())

    # 4. Check the schedule against the golden dependence graph.
    graph = build_task_graph(trace)
    problems = result.verify_against(graph)
    print(f"dependence check: {'OK' if not problems else problems[:3]}")
    print(f"dependence edges: {graph.n_edges}, critical path "
          f"{graph.critical_path() / 1e9:.2f} ms, "
          f"max parallelism {graph.max_parallelism()}")

    # 5. What the hardware structures saw.
    dep = result.stats["dep_table"]
    print()
    print(render_table(
        ["structure", "value"],
        [
            ["Task Pool high water", result.stats["task_pool"]["high_water"]],
            ["Dependence Table high water", dep["high_water"]],
            ["longest hash chain", dep["max_hash_chain"]],
            ["longest Kick-Off list", dep["max_kickoff_waiters"]],
            ["mean hash probes", round(dep["mean_probes"], 2)],
            ["mean busy memory banks", round(result.stats["memory"]["mean_busy_banks"], 1)],
        ],
        "hardware counters",
    ))


if __name__ == "__main__":
    main()
