#!/usr/bin/env python3
"""Design-space exploration: how big must the hardware tables be? (Fig. 6)

Sweeps the Dependence Table and Task Pool sizes for the independent-task
workload and reports speedup plus the longest hash chain — a miniature of
the experiment the paper used to pick the 1K-TD / 4K-entry design point.

Run:  python examples/design_space_exploration.py   (~1 minute)
"""

from repro.analysis import plot_series, render_table
from repro.config import contention_free
from repro.machine import NexusMachine, sweep_parameter
from repro.traces import independent_trace

WORKERS = 64  # scaled down from the paper's 256 so the example stays quick
N_TASKS = 3000


def main() -> None:
    trace = independent_trace(n_tasks=N_TASKS)
    base_cfg = contention_free(workers=WORKERS).with_(
        task_pool_entries=2048, tp_free_list_entries=2048
    )
    baseline = NexusMachine(base_cfg.with_(workers=1)).run(trace)

    # --- sweep the Dependence Table, large fixed Task Pool ---------------------
    dt_sizes = [256, 512, 1024, 2048, 4096, 8192]
    dt_rows = []
    dt_points = []
    for size, result in sweep_parameter(
        trace, base_cfg, "dependence_table_entries", dt_sizes
    ).items():
        speedup = result.speedup_over(baseline)
        chain = result.stats["dep_table"]["max_hash_chain"]
        dt_rows.append([size, round(speedup, 1), chain])
        dt_points.append((float(size), speedup))
    print(render_table(
        ["DT entries", "speedup", "longest hash chain"],
        dt_rows,
        f"Dependence Table sweep (Task Pool fixed at 2K, {WORKERS} cores)",
    ))

    # --- sweep the Task Pool, large fixed Dependence Table ----------------------
    tp_sizes = [64, 128, 256, 512, 1024, 2048]
    tp_rows = []
    tp_points = []
    for size, result in sweep_parameter(
        trace,
        base_cfg.with_(dependence_table_entries=8192),
        "task_pool_entries",
        tp_sizes,
    ).items():
        speedup = result.speedup_over(baseline)
        tp_rows.append([size, round(speedup, 1)])
        tp_points.append((float(size), speedup))
    print()
    print(render_table(
        ["TP entries", "speedup"],
        tp_rows,
        f"Task Pool sweep (Dependence Table fixed at 8K, {WORKERS} cores)",
    ))

    print()
    print(plot_series(
        {"DT sweep": dt_points, "TP sweep": tp_points},
        title="Fig. 6 shape: speedup saturates once each table covers the task window",
        xlabel="entries",
        ylabel="speedup",
    ))
    print("\nPaper's conclusion, reproduced: a ~512-entry Task Pool already "
          "reaches peak speedup; the Dependence Table needs to cover the "
          "in-flight address window, and extra capacity mainly shortens "
          "hash chains.")


if __name__ == "__main__":
    main()
