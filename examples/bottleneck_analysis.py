#!/usr/bin/env python3
"""Why did it stop scaling?  Bottleneck attribution + worker timelines.

The paper explains each of its saturation points narratively (master can't
generate tasks fast enough / limited memory bandwidth / not enough
task-level parallelism).  This example reproduces those three regimes on
purpose and shows the automated attribution plus a per-core Gantt chart
for each.

Run:  python examples/bottleneck_analysis.py
"""

from repro.analysis import gantt_chart, render_table, stage_latency_table
from repro.config import SystemConfig, contention_free
from repro.machine import analyze_bottleneck, run_trace
from repro.traces import TimeModel, horizontal_chains_trace, independent_trace

FAST = TimeModel(mean_exec=2_000_000, mean_memory=1_500_000, cv=0.1)


def show(title: str, trace, cfg: SystemConfig) -> None:
    result = run_trace(trace, cfg)
    verdict = analyze_bottleneck(result, cfg)
    print(f"\n=== {title} ===")
    print(result.summary())
    print(verdict.describe())
    print(gantt_chart(result, width=88, max_cores=8))


def main() -> None:
    # 1. Worker-bound: a small machine saturates its cores.
    show(
        "worker-bound: 2 cores, plenty of parallel work",
        independent_trace(n_tasks=400, n_params=2, time_model=FAST),
        SystemConfig(workers=2, memory_contention=False),
    )

    # 2. Memory-bound: 64 cores demand ~41 banks, only 32 exist.
    show(
        "memory-bound: 64 cores vs 32 memory banks",
        independent_trace(n_tasks=4000),
        SystemConfig(workers=64),
    )

    # 3. Application-bound: 4 dependency chains cannot feed 16 cores.
    show(
        "application-bound: 4 chains on 16 cores",
        horizontal_chains_trace(rows=4, cols=60, time_model=FAST),
        SystemConfig(workers=16, memory_contention=False),
    )

    # 4. Master-bound: 256 cores drain tasks faster than one master makes them.
    trace = independent_trace()
    cfg = contention_free(workers=256)
    result = run_trace(trace, cfg)
    print("\n=== master-bound: 256 cores, contention-free ===")
    print(result.summary())
    print(analyze_bottleneck(result, cfg).describe())
    print()
    print(render_table(
        ["lifecycle stage", "mean latency (ns)"],
        stage_latency_table(result),
        "where a task's time goes (note the ready->dispatched wait: tasks "
        "queue because workers outpace the master)",
    ))


if __name__ == "__main__":
    main()
