#!/usr/bin/env python3
"""Tour of the StarSs programming model layer.

Covers every frontend feature on a realistic blocked-matrix pipeline:

* ``@prog.task`` pragmas with input/output/inout directions,
* variadic parameter lists (``*blocks`` — tasks wider than one descriptor),
* barriers,
* functional parallel execution with result validation,
* lowering to a trace and comparing a software StarSs runtime against
  Nexus++ on the *same* recorded program (the paper's motivation, §I).

Run:  python examples/starss_programming.py
"""

import numpy as np

from repro.analysis import render_table
from repro.config import paper_default
from repro.frontend import StarSsProgram
from repro.machine import run_trace
from repro.runtime import DataflowExecutor, SoftwareRTSConfig, run_software_rts
from repro.sim import US

N_BLOCKS = 24
BLOCK = 32


def build_pipeline():
    """scale -> stencil -> reduce over a strip of matrix blocks."""
    prog = StarSsProgram("pipeline")
    blocks = [np.full((BLOCK, BLOCK), float(i)) for i in range(N_BLOCKS)]
    halo = [np.zeros((BLOCK, BLOCK)) for _ in range(N_BLOCKS)]
    total = np.zeros(1)

    @prog.task(inouts=("b",))
    def scale(b, factor):
        b *= factor

    @prog.task(inputs=("left", "right"), outputs=("out",))
    def stencil(left, right, out):
        out[:] = ((left if left is not None else 0)
                  + (right if right is not None else 0)) / 2.0

    @prog.task(inputs=("blocks",), inouts=("acc",))
    def reduce_all(acc, *blocks):
        acc[0] = sum(float(b.sum()) for b in blocks)

    # Phase 1: scale every block (embarrassingly parallel).
    for b in blocks:
        scale(b, 2.0)
    # Phase 2: halo exchange stencil (neighbour dependencies).
    for i in range(N_BLOCKS):
        stencil(
            blocks[i - 1] if i > 0 else None,
            blocks[i + 1] if i + 1 < N_BLOCKS else None,
            halo[i],
        )
    prog.barrier()
    # Phase 3: one wide reduction task reading all halo blocks (24 params
    # -> 3 Task Pool entries once lowered: dummy tasks in action).
    reduce_all(total, *halo)
    return prog, blocks, halo, total


def expected_total() -> float:
    vals = [2.0 * i for i in range(N_BLOCKS)]
    total = 0.0
    for i in range(N_BLOCKS):
        left = vals[i - 1] if i > 0 else 0.0
        right = vals[i + 1] if i + 1 < N_BLOCKS else 0.0
        total += (left + right) / 2.0 * BLOCK * BLOCK
    return total


def main() -> None:
    # --- record + functional execution -----------------------------------------
    prog, blocks, halo, total = build_pipeline()
    print(f"recorded {len(prog.tasks)} tasks in "
          f"{prog.tasks[-1].epoch + 1} barrier epochs")
    report = DataflowExecutor(workers=6).execute(prog)
    print(f"executed: max concurrency {report.max_concurrency}, "
          f"reduction = {total[0]:.1f} (expected {expected_total():.1f})")
    assert report.ok and total[0] == expected_total()

    # --- lower to a trace and simulate ------------------------------------------
    trace = prog.to_trace(exec_time=round(5 * US))
    print(f"\nlowered trace: {trace.describe()}")

    cfg = paper_default(workers=8)
    hw = run_trace(trace, cfg)
    sw = run_software_rts(trace, cfg, SoftwareRTSConfig())
    rows = [
        ["software StarSs RTS", round(sw.makespan / 1e6, 1),
         f"{sw.worker_utilization():.0%}"],
        ["Nexus++", round(hw.makespan / 1e6, 1),
         f"{hw.worker_utilization():.0%}"],
    ]
    print()
    print(render_table(
        ["runtime", "makespan (us)", "worker utilization"],
        rows,
        "same program, 8 workers: software RTS vs hardware task management",
    ))
    print(f"\nNexus++ is {sw.makespan / hw.makespan:.1f}x faster end-to-end; "
          "the wide reduction task occupied "
          f"{hw.stats['task_pool']['dummy_tasks_created']} dummy Task Pool entries")


if __name__ == "__main__":
    main()
