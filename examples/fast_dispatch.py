"""Fast dispatch: per-hop latency breakdown before/after the fast path.

PR 3 left the 4-shard / 4-master / retire-depth-4 machine *latency-bound*:
no resource saturates, but the hazard-dense workload's critical dependence
chain pays ~85 ns per hop — TD transfer after the final resolution, the
forward hop to the home shard, the resolution itself.  This example runs
the latency-bound machine with the fast-dispatch subsystem off and on and
prints the per-hop latency breakdown (resolve / forward / TD transfer /
start along the critical chain) for each step of the ablation, plus the
bottleneck verdict — the baseline reads *latency-bound* with the chain
arithmetic spelled out, the full subsystem shifts the dominant component
back to resolve.

Run with::

    PYTHONPATH=src python examples/fast_dispatch.py
"""

from repro.analysis import render_table
from repro.config import BUS_MODEL_FITTED, SystemConfig
from repro.machine import analyze_bottleneck, dispatch_latency_sweep
from repro.traces import random_trace


def main() -> None:
    trace = random_trace(
        1200,
        n_addresses=96,
        max_params=6,
        seed=7,
        mean_exec=4000,
        mean_memory=0,
        name="random-hazard-dense",
    )
    cfg = SystemConfig(
        workers=16,
        maestro_shards=4,
        master_cores=4,
        submission_batch=8,
        retire_pipeline_depth=4,
        td_prefetch_depth=2,
        memory_contention=False,
        bus_model=BUS_MODEL_FITTED,
    )
    report = dispatch_latency_sweep(trace, cfg, td_cache=64)

    rows = []
    for row in report.rows():
        hop = row["chain_hop_ns"]
        rows.append(
            [
                row["td_cache"] or "off",
                "on" if row["fast_path"] else "off",
                round(row["makespan_ps"] / 1e6, 2),
                round(row["speedup_vs_baseline"], 2),
                f"{hop.get('total', 0.0):.0f}",
                f"{hop.get('resolve', 0.0):.0f}",
                f"{hop.get('forward', 0.0):.0f}",
                f"{hop.get('td_transfer', 0.0):.0f}",
                row["dominant_chain_component"],
            ]
        )
    print(
        render_table(
            [
                "TD cache",
                "fast path",
                "makespan (us)",
                "speedup",
                "ns/hop",
                "resolve",
                "forward",
                "TD",
                "dominant",
            ],
            rows,
            f"{trace.name}: fast-dispatch ablation "
            f"({cfg.workers} workers, {cfg.maestro_shards} shards, "
            f"{cfg.master_cores} masters, retire depth "
            f"{cfg.retire_pipeline_depth})",
        )
    )

    # The full attribution for the two ends of the grid: the baseline is
    # latency-bound with the chain arithmetic in the verdict detail; the
    # full subsystem's chain is ~1.5x shorter per hop.
    for td_cache, fast_path in ((0, False), (64, True)):
        run = report.at(td_cache, fast_path)
        rep = analyze_bottleneck(
            run,
            cfg.with_(td_cache_entries=td_cache, kickoff_fast_path=fast_path),
        )
        label = f"cache={td_cache or 'off'}, fast path={'on' if fast_path else 'off'}"
        print(f"\n{label}: {rep.describe()}")
        sub = run.stats["dispatch"].get("fast_dispatch")
        if sub and "td_cache" in sub:
            cache = sub["td_cache"]
            print(
                f"  TD cache: {cache['hit_rate']:.0%} hit rate, "
                f"{cache['evictions']} evictions, "
                f"{cache['invalidations']} invalidated at retire; "
                f"{sub['fast_dispatches']} fast dispatches "
                f"({sub['fast_dispatches_remote']} skipped the forward hop)"
            )


if __name__ == "__main__":
    main()
