#!/usr/bin/env python3
"""Gaussian elimination with partial pivoting — the paper's §V showcase.

Demonstrates the three claims the paper makes with this workload:

1. the task graph's fan-out grows with the matrix (Fig. 5), so fixed
   Kick-Off Lists overflow: original-Nexus restricted mode *rejects* it,
   Nexus++ absorbs it with dummy tasks/entries;
2. the workload runs efficiently end to end (a miniature of Fig. 8);
3. the programming model is real: the same task structure executes
   functionally and factorises an actual matrix (checked against NumPy).

Run:  python examples/gaussian_elimination.py
"""

import numpy as np

from repro.analysis import render_table
from repro.config import nexus_restricted, paper_default
from repro.frontend import StarSsProgram
from repro.hw.errors import CapacityError
from repro.machine import run_trace, speedup_curve
from repro.runtime import DataflowExecutor
from repro.traces import gaussian_task_count, gaussian_trace


def functional_lu(n: int = 24, workers: int = 8) -> None:
    """Really factorise an n x n matrix through the StarSs frontend."""
    rng = np.random.default_rng(42)
    matrix = rng.normal(size=(n, n)) + np.eye(n) * n
    work = matrix.copy()
    rows = [work[i] for i in range(n)]
    prog = StarSsProgram("ge-functional")

    @prog.task(inouts=("pivot_row", "below"))
    def pivot(k, pivot_row, *below):
        col = [abs(pivot_row[k])] + [abs(r[k]) for r in below]
        best = int(np.argmax(col))
        if best > 0:
            tmp = pivot_row.copy()
            pivot_row[:] = below[best - 1]
            below[best - 1][:] = tmp

    @prog.task(inputs=("pivot_row",), inouts=("row",))
    def eliminate(k, pivot_row, row):
        factor = row[k] / pivot_row[k]
        row[k:] -= factor * pivot_row[k:]
        row[k] = factor

    for k in range(n - 1):
        pivot(k, rows[k], *rows[k + 1 :])
        for j in range(k + 1, n):
            eliminate(k, rows[k], rows[j])

    report = DataflowExecutor(workers=workers).execute(prog)
    lu = np.vstack(rows)
    l = np.tril(lu, k=-1) + np.eye(n)
    u = np.triu(lu)
    det_ok = abs(np.linalg.det(l @ u)) - abs(np.linalg.det(matrix))
    print(f"functional LU: {len(prog.tasks)} tasks "
          f"(= (n^2+n-2)/2 = {gaussian_task_count(n)}), "
          f"max concurrency {report.max_concurrency}, "
          f"|det| error {abs(det_ok):.2e}")
    assert report.ok and abs(det_ok) < 1e-6 * abs(np.linalg.det(matrix))


def nexus_vs_nexuspp(n: int = 64) -> None:
    """Original Nexus rejects GE; Nexus++ runs it (dummy tasks/entries)."""
    trace = gaussian_trace(n)
    print(f"\nGE n={n}: {len(trace)} tasks, widest task "
          f"{trace.max_params} parameters")
    try:
        run_trace(trace, nexus_restricted(workers=4))
        print("restricted Nexus: unexpectedly succeeded?!")
    except CapacityError as exc:
        print(f"restricted Nexus: REJECTED — {exc}")
    result = run_trace(trace, paper_default(workers=4))
    dep = result.stats["dep_table"]
    print(f"Nexus++: completed in {result.makespan / 1e6:.1f} us using "
          f"{result.stats['task_pool']['dummy_tasks_created']} dummy tasks and "
          f"{dep['dummy_entries_created']} dummy entries "
          f"(longest Kick-Off list {dep['max_kickoff_waiters']})")


def mini_fig8(n: int = 100) -> None:
    trace = gaussian_trace(n)
    cores = [1, 2, 4, 8, 16]
    curve = speedup_curve(trace, cores, paper_default())
    print()
    print(render_table(
        ["cores", "speedup"],
        [[c, round(s, 2)] for c, s in curve.rows()],
        f"GE n={n} on Nexus++ (miniature Fig. 8; larger n scales further)",
    ))


def main() -> None:
    functional_lu()
    nexus_vs_nexuspp()
    mini_fig8()


if __name__ == "__main__":
    main()
